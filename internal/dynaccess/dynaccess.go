// Package dynaccess is a dynamic variant of the paper's random-access index
// (extension; the paper's Section 7 and its citation [6] — Berkholz,
// Keppeler, Schweikardt, "Answering UCQs under updates" — motivate
// maintaining such structures under database changes).
//
// It supports full (projection-free) free-connex CQs and maintains, under
// tuple insertions and deletions on the base relations:
//
//   - Count() in O(1),
//   - Access(j) in O(log n) per tree node (Fenwick prefix search replaces
//     Algorithm 2's static prefix sums),
//   - InvertedAccess in O(log n),
//   - uniform sampling via Access(Uniform(Count())).
//
// Update cost is O(a · log n) where a is the number of ancestor tuples whose
// weights change. For hierarchical joins a is small; in the worst case a is
// linear — consistent with the known lower bounds: sublinear update time for
// all free-connex CQs would contradict the OMv-based hardness results of
// [6], so a structure like this cannot do better in general.
package dynaccess

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/access"
	"repro/internal/fenwick"
	"repro/internal/hypergraph"
	"repro/internal/query"
	"repro/internal/relation"
)

// ErrNotFull is returned when the query has existential variables; the
// dynamic index supports full acyclic CQs (apply it to the output of the
// static Proposition 4.2 reduction if projections are needed and updates
// only touch the remaining relations).
var ErrNotFull = errors.New("dynaccess: query must be a full (projection-free) CQ")

// ErrCyclic is returned for cyclic queries.
var ErrCyclic = errors.New("dynaccess: query is cyclic")

// Index is the dynamic weighted join-tree index.
//
// Unlike the static access.Index, this structure mutates under Insert and
// Delete, so all public methods are internally synchronized with a
// readers–writer lock: any number of concurrent Count / Access /
// InvertedAccess / Contains / Sample / SampleN readers interleave freely,
// while Insert and Delete exclude everything else. Each probe observes an
// atomic snapshot of the index (no torn reads mid-cascade).
type Index struct {
	mu     sync.RWMutex
	head   []string
	nodes  []*node
	root   *node
	byBase map[string][]*node // base relation name → nodes fed by it
}

type node struct {
	atom     query.Atom
	baseName string
	schema   relation.Schema
	varPos   []int // positions in the base tuple providing each schema var

	parent      *node
	children    []*node
	childIdx    int   // index of this node in parent.children
	pAttPos     []int // positions in schema shared with parent (schema order)
	childKeyPos [][]int

	schemaHeadPos []int
	outCols       []int
	outPos        []int

	tuples []relation.Tuple
	alive  []bool
	byKey  map[string]int

	buckets     map[string]*bucket
	tupleBucket []*bucket
	tupleOrd    []int

	// childRev[i]: child-bucket key → positions of this node's tuples whose
	// projection equals the key (the reverse index driving update cascades).
	childRev []map[string][]int
}

type bucket struct {
	key    string
	tuples []int
	w      fenwick.Tree
}

// New builds the dynamic index for a full acyclic CQ over the current
// contents of db, in linear time.
func New(db *relation.Database, q *query.CQ) (*Index, error) {
	if !q.IsFull() {
		return nil, fmt.Errorf("%w: %s", ErrNotFull, q.Name)
	}
	tree, err := hypergraph.FromCQ(q).JoinTree()
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrCyclic, q.Name)
	}

	idx := &Index{head: append([]string(nil), q.Head...), byBase: make(map[string][]*node)}
	headPos := make(map[string]int, len(q.Head))
	for i, h := range q.Head {
		headPos[h] = i
	}

	nodes := make([]*node, len(q.Body))
	for i, a := range q.Body {
		base, err := db.Relation(a.Relation)
		if err != nil {
			return nil, err
		}
		if base.Arity() != len(a.Terms) {
			return nil, fmt.Errorf("dynaccess: atom %s arity mismatch with relation (%d vs %d)",
				a, len(a.Terms), base.Arity())
		}
		vars := a.Vars()
		schema, err := relation.NewSchema(vars...)
		if err != nil {
			return nil, err
		}
		firstPos := make(map[string]int)
		for pos, t := range a.Terms {
			if t.IsVar() {
				if _, ok := firstPos[t.Var]; !ok {
					firstPos[t.Var] = pos
				}
			}
		}
		n := &node{
			atom:     a,
			baseName: a.Relation,
			schema:   schema,
			byKey:    make(map[string]int),
			buckets:  make(map[string]*bucket),
		}
		n.varPos = make([]int, len(vars))
		n.schemaHeadPos = make([]int, len(vars))
		for vi, v := range vars {
			n.varPos[vi] = firstPos[v]
			hp, ok := headPos[v]
			if !ok {
				return nil, fmt.Errorf("%w: variable %s", ErrNotFull, v)
			}
			n.schemaHeadPos[vi] = hp
		}
		nodes[i] = n
		idx.byBase[a.Relation] = append(idx.byBase[a.Relation], n)
	}

	// Wire the tree (tree.Nodes is in atom order; EdgeID = atom index).
	for i, tn := range tree.Nodes {
		n := nodes[i]
		if tn.Parent == nil {
			idx.root = n
			continue
		}
		p := nodes[tn.Parent.EdgeID]
		shared := n.schema.Intersect(p.schema)
		n.pAttPos, _ = n.schema.Positions(shared)
		keyPos, _ := p.schema.Positions(shared)
		n.parent = p
		n.childIdx = len(p.children)
		p.children = append(p.children, n)
		p.childKeyPos = append(p.childKeyPos, keyPos)
		p.childRev = append(p.childRev, make(map[string][]int))
	}
	idx.nodes = nodes

	// Output assignment: first node containing each head var.
	assigned := make([]bool, len(q.Head))
	for _, n := range nodes {
		for i, hp := range n.schemaHeadPos {
			if !assigned[hp] {
				assigned[hp] = true
				n.outCols = append(n.outCols, hp)
				n.outPos = append(n.outPos, i)
			}
		}
	}
	for i, ok := range assigned {
		if !ok {
			return nil, fmt.Errorf("dynaccess: head variable %q not covered", q.Head[i])
		}
	}

	// Bulk load leaf-to-root so weights are available bottom-up.
	var load func(n *node) error
	load = func(n *node) error {
		for _, c := range n.children {
			if err := load(c); err != nil {
				return err
			}
		}
		base, err := db.Relation(n.baseName)
		if err != nil {
			return err
		}
		for _, raw := range base.Tuples() {
			if t, ok := n.instantiate(raw); ok {
				n.insertLocal(t) // bulk load: no cascade needed bottom-up
			}
		}
		return nil
	}
	if err := load(idx.root); err != nil {
		return nil, err
	}
	return idx, nil
}

// instantiate maps a base tuple through the atom (constants and repeated
// variables filter; variable positions project).
func (n *node) instantiate(raw relation.Tuple) (relation.Tuple, bool) {
	firstPos := make(map[string]int, len(n.atom.Terms))
	for pos, t := range n.atom.Terms {
		if !t.IsVar() {
			if raw[pos] != t.Const {
				return nil, false
			}
			continue
		}
		if fp, ok := firstPos[t.Var]; ok {
			if raw[pos] != raw[fp] {
				return nil, false
			}
		} else {
			firstPos[t.Var] = pos
		}
	}
	out := make(relation.Tuple, len(n.varPos))
	for i, p := range n.varPos {
		out[i] = raw[p]
	}
	return out, true
}

// weightOf computes the current weight of the tuple at pos from the child
// bucket totals.
func (n *node) weightOf(pos int) int64 {
	if !n.alive[pos] {
		return 0
	}
	t := n.tuples[pos]
	w := int64(1)
	for ci, c := range n.children {
		cb := c.buckets[t.ProjectKey(n.childKeyPos[ci])]
		if cb == nil || cb.w.Total() == 0 {
			return 0
		}
		w *= cb.w.Total()
	}
	return w
}

// insertLocal registers a (new or revived) tuple in this node and returns
// the bucket whose total changed, or nil for a duplicate no-op.
func (n *node) insertLocal(t relation.Tuple) *bucket {
	key := t.Key()
	if pos, ok := n.byKey[key]; ok {
		if n.alive[pos] {
			return nil
		}
		// Revive a tombstone.
		n.alive[pos] = true
		b := n.tupleBucket[pos]
		b.w.Set(n.tupleOrd[pos], n.weightOf(pos))
		return b
	}
	pos := len(n.tuples)
	n.tuples = append(n.tuples, t)
	n.alive = append(n.alive, true)
	n.byKey[key] = pos
	bkey := t.ProjectKey(n.pAttPos)
	b := n.buckets[bkey]
	if b == nil {
		b = &bucket{key: bkey}
		n.buckets[bkey] = b
	}
	n.tupleBucket = append(n.tupleBucket, b)
	n.tupleOrd = append(n.tupleOrd, len(b.tuples))
	b.tuples = append(b.tuples, pos)
	for ci := range n.children {
		ck := t.ProjectKey(n.childKeyPos[ci])
		n.childRev[ci][ck] = append(n.childRev[ci][ck], pos)
	}
	b.w.Append(n.weightOf(pos))
	return b
}

// cascade propagates a child-bucket total change to ancestors: every parent
// tuple matching the changed bucket's key gets its weight recomputed.
func (idx *Index) cascade(n *node, changed map[*bucket]bool) {
	for len(changed) > 0 && n.parent != nil {
		p := n.parent
		parentChanged := make(map[*bucket]bool)
		for b := range changed {
			for _, pos := range p.childRev[n.childIdx][b.key] {
				pb := p.tupleBucket[pos]
				old := pb.w.Value(p.tupleOrd[pos])
				neww := p.weightOf(pos)
				if old != neww {
					pb.w.Set(p.tupleOrd[pos], neww)
					parentChanged[pb] = true
				}
			}
		}
		n, changed = p, parentChanged
	}
}

// Insert adds a base-relation tuple to the index (set semantics: duplicates
// are no-ops). The tuple is routed to every atom over that relation. It
// reports whether any node changed. NOTE: Insert updates the index, not the
// relation.Database it was built from.
func (idx *Index) Insert(baseRelation string, raw relation.Tuple) (bool, error) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	nodes, ok := idx.byBase[baseRelation]
	if !ok {
		return false, fmt.Errorf("dynaccess: no atom over relation %q", baseRelation)
	}
	any := false
	for _, n := range nodes {
		if len(raw) != len(n.atom.Terms) {
			return false, fmt.Errorf("dynaccess: tuple arity %d, relation %q needs %d",
				len(raw), baseRelation, len(n.atom.Terms))
		}
		t, match := n.instantiate(raw)
		if !match {
			continue
		}
		if b := n.insertLocal(t); b != nil {
			idx.cascade(n, map[*bucket]bool{b: true})
			any = true
		}
	}
	return any, nil
}

// Delete removes a base-relation tuple (a no-op if absent). It reports
// whether anything changed.
func (idx *Index) Delete(baseRelation string, raw relation.Tuple) (bool, error) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	nodes, ok := idx.byBase[baseRelation]
	if !ok {
		return false, fmt.Errorf("dynaccess: no atom over relation %q", baseRelation)
	}
	any := false
	for _, n := range nodes {
		if len(raw) != len(n.atom.Terms) {
			return false, fmt.Errorf("dynaccess: tuple arity %d, relation %q needs %d",
				len(raw), baseRelation, len(n.atom.Terms))
		}
		t, match := n.instantiate(raw)
		if !match {
			continue
		}
		pos, exists := n.byKey[t.Key()]
		if !exists || !n.alive[pos] {
			continue
		}
		n.alive[pos] = false
		b := n.tupleBucket[pos]
		b.w.Set(n.tupleOrd[pos], 0)
		idx.cascade(n, map[*bucket]bool{b: true})
		any = true
	}
	return any, nil
}

// Count returns the current |Q(D)| in constant time.
func (idx *Index) Count() int64 {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.countLocked()
}

// countLocked is Count with the lock already held (RWMutex read locks are
// not re-entrant when a writer is queued, so internal callers must not call
// the public method).
func (idx *Index) countLocked() int64 {
	b := idx.root.buckets[""]
	if b == nil {
		return 0
	}
	return b.w.Total()
}

// Head returns the output variable order.
func (idx *Index) Head() []string { return idx.head }

// Access returns the j-th answer of the current enumeration order. The order
// is deterministic between updates but may change across them (deleted
// ranges close up; insertions append within buckets).
func (idx *Index) Access(j int64) (relation.Tuple, error) {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.accessLocked(j)
}

func (idx *Index) accessLocked(j int64) (relation.Tuple, error) {
	if j < 0 || j >= idx.countLocked() {
		return nil, access.ErrOutOfBounds
	}
	answer := make(relation.Tuple, len(idx.head))
	idx.subtreeAccess(idx.root, idx.root.buckets[""], j, answer)
	return answer, nil
}

func (idx *Index) subtreeAccess(n *node, b *bucket, j int64, answer relation.Tuple) {
	ord := b.w.FindPrefix(j)
	pos := b.tuples[ord]
	t := n.tuples[pos]
	for k, col := range n.outCols {
		answer[col] = t[n.outPos[k]]
	}
	if len(n.children) == 0 {
		return
	}
	rem := j - b.w.Prefix(ord)
	childBuckets := make([]*bucket, len(n.children))
	for ci, c := range n.children {
		childBuckets[ci] = c.buckets[t.ProjectKey(n.childKeyPos[ci])]
	}
	for ci := len(n.children) - 1; ci >= 0; ci-- {
		cb := childBuckets[ci]
		total := cb.w.Total()
		ji := rem % total
		rem /= total
		idx.subtreeAccess(n.children[ci], cb, ji, answer)
	}
}

// InvertedAccess returns the current position of an answer, or ok=false.
func (idx *Index) InvertedAccess(answer relation.Tuple) (int64, bool) {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.invertedLocked(answer)
}

func (idx *Index) invertedLocked(answer relation.Tuple) (int64, bool) {
	if len(answer) != len(idx.head) {
		return 0, false
	}
	return idx.invertedSubtree(idx.root, answer)
}

func (idx *Index) invertedSubtree(n *node, answer relation.Tuple) (int64, bool) {
	t := make(relation.Tuple, len(n.schemaHeadPos))
	for i, hp := range n.schemaHeadPos {
		t[i] = answer[hp]
	}
	pos, ok := n.byKey[t.Key()]
	if !ok || !n.alive[pos] {
		return 0, false
	}
	b := n.tupleBucket[pos]
	ord := n.tupleOrd[pos]
	if b.w.Value(ord) == 0 {
		return 0, false
	}
	var offset int64
	for ci, c := range n.children {
		ji, ok := idx.invertedSubtree(c, answer)
		if !ok {
			return 0, false
		}
		cb := c.buckets[t.ProjectKey(n.childKeyPos[ci])]
		if cb == nil {
			return 0, false
		}
		offset = offset*cb.w.Total() + ji
	}
	return b.w.Prefix(ord) + offset, true
}

// Contains reports whether answer is currently in Q(D).
func (idx *Index) Contains(answer relation.Tuple) bool {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	_, ok := idx.invertedLocked(answer)
	return ok
}

// Sample returns a uniformly random current answer, or ok=false when empty.
func (idx *Index) Sample(rng *rand.Rand) (relation.Tuple, bool) {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	n := idx.countLocked()
	if n == 0 {
		return nil, false
	}
	t, err := idx.accessLocked(rng.Int63n(n))
	if err != nil {
		return nil, false
	}
	return t, true
}

// SampleN returns k uniformly random current answers drawn independently
// (with replacement), all against one consistent snapshot of the index: the
// read lock is held across the batch, so no update interleaves mid-batch.
// It returns fewer than k (possibly zero) answers only when the index is
// empty.
func (idx *Index) SampleN(k int64, rng *rand.Rand) []relation.Tuple {
	if k <= 0 {
		return nil
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	n := idx.countLocked()
	if n == 0 {
		return nil
	}
	c := k // initial capacity only: sampling is with replacement, so k is unbounded
	if c > 1024 {
		c = 1024
	}
	out := make([]relation.Tuple, 0, c)
	for int64(len(out)) < k {
		t, err := idx.accessLocked(rng.Int63n(n))
		if err != nil {
			break
		}
		out = append(out, t)
	}
	return out
}
