// Package dynaccess is a dynamic variant of the paper's random-access index
// (extension; the paper's Section 7 and its citation [6] — Berkholz,
// Keppeler, Schweikardt, "Answering UCQs under updates" — motivate
// maintaining such structures under database changes).
//
// It supports full (projection-free) free-connex CQs and maintains, under
// tuple insertions and deletions on the base relations:
//
//   - Count() in O(1),
//   - Access(j) in O(log n) per tree node (Fenwick prefix search replaces
//     Algorithm 2's static prefix sums),
//   - InvertedAccess in O(log n),
//   - uniform sampling via Access(Uniform(Count())).
//
// Update cost is O(a · log n) where a is the number of ancestor tuples whose
// weights change. For hierarchical joins a is small; in the worst case a is
// linear — consistent with the known lower bounds: sublinear update time for
// all free-connex CQs would contradict the OMv-based hardness results of
// [6], so a structure like this cannot do better in general.
//
// # Representation
//
// Because tuples arrive dynamically, buckets cannot be addressed by the
// dense prebuilt group IDs the static index uses. Instead, every tuple
// caches direct *bucket pointers* to its matching child buckets (buckets are
// created once and never removed — deletions are tombstones — so the
// pointers are stable): the probe paths never re-encode a join key. Keys are
// encoded only on the mutation path, and exclusively through the canonical
// relation encoders (Tuple.Key / Tuple.ProjectKey / AppendProjectedKey).
package dynaccess

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/access"
	"repro/internal/fenwick"
	"repro/internal/hypergraph"
	"repro/internal/query"
	"repro/internal/relation"
)

// ErrNotFull is returned when the query has existential variables; the
// dynamic index supports full acyclic CQs (apply it to the output of the
// static Proposition 4.2 reduction if projections are needed and updates
// only touch the remaining relations).
var ErrNotFull = errors.New("dynaccess: query must be a full (projection-free) CQ")

// ErrCyclic is returned for cyclic queries.
var ErrCyclic = errors.New("dynaccess: query is cyclic")

// Index is the dynamic weighted join-tree index.
//
// Unlike the static access.Index, this structure mutates under Insert and
// Delete, so all public methods are internally synchronized with a
// readers–writer lock: any number of concurrent Count / Access /
// InvertedAccess / Contains / Sample / SampleN readers interleave freely,
// while Insert and Delete exclude everything else. Each probe observes an
// atomic snapshot of the index (no torn reads mid-cascade).
type Index struct {
	mu     sync.RWMutex
	q      *query.CQ
	head   []string
	nodes  []*node
	root   *node
	byBase map[string][]*node  // base relation name → nodes fed by it
	bases  map[string]*baseSet // base relation name → its logical contents
}

// baseSet mirrors the logical contents of one base relation feeding the
// index: raw tuples in arrival order, with tombstones that revive in place
// exactly like node buckets do. Tombstones are kept (and persisted — see
// Tables) deliberately: a restored or rebuilt index must reproduce the
// live one's bucket layouts so that a later re-insert revives in the same
// position and enumeration order stays byte-identical to a process that
// never restarted.
type baseSet struct {
	arity  int
	tuples []relation.Tuple
	alive  []bool
	byKey  map[string]int
}

func (b *baseSet) insert(raw relation.Tuple) {
	key := raw.Key()
	if pos, ok := b.byKey[key]; ok {
		b.alive[pos] = true
		return
	}
	b.byKey[key] = len(b.tuples)
	b.tuples = append(b.tuples, raw.Clone()) // raw may be a caller-owned buffer
	b.alive = append(b.alive, true)
}

func (b *baseSet) delete(raw relation.Tuple) {
	if pos, ok := b.byKey[raw.Key()]; ok {
		b.alive[pos] = false
	}
}

// BaseTable is the exported logical contents of one base relation: every
// tuple ever inserted in arrival order, with Dead listing the positions
// currently tombstoned. This is the index's persistable form — see
// NewFromTables for the round trip.
type BaseTable struct {
	Name   string
	Arity  int
	Tuples []relation.Tuple
	Dead   []int64 // sorted, strictly increasing tombstone positions
}

// constCheck is a precompiled constant-selection condition of an atom.
type constCheck struct {
	pos int
	val relation.Value
}

type node struct {
	atom     query.Atom
	baseName string
	schema   relation.Schema
	varPos   []int // positions in the base tuple providing each schema var

	// Precompiled instantiation conditions (replacing the per-tuple
	// first-occurrence map the load path used to rebuild for every row).
	constChecks []constCheck
	eqChecks    [][2]int // raw[a] must equal raw[b] (repeated variables)

	parent      *node
	children    []*node
	childIdx    int   // index of this node in parent.children
	pAttPos     []int // positions in schema shared with parent (schema order)
	childKeyPos [][]int

	schemaHeadPos []int
	outCols       []int
	outPos        []int

	tuples []relation.Tuple
	alive  []bool
	byKey  map[string]int

	buckets     map[string]*bucket
	tupleBucket []*bucket
	tupleOrd    []int

	// childBkt[ci][pos]: cached pointer to the bucket of child ci matching
	// this node's tuple pos, nil while the child has no such bucket yet.
	// Buckets are never removed, so a non-nil pointer stays valid forever;
	// the nil → bucket transition happens during the cascade that the
	// child-bucket creation triggers (see cascade). This is the dynamic
	// counterpart of the static index's precomputed child group IDs: probes
	// follow pointers instead of hashing keys.
	childBkt [][]*bucket

	// childRev[i]: child-bucket key → positions of this node's tuples whose
	// projection equals the key (the reverse index driving update cascades).
	childRev []map[string][]int
}

type bucket struct {
	key    string
	tuples []int
	w      fenwick.Tree
}

// build assembles the index's static structure — nodes, join tree wiring,
// output assignment, empty base sets — without loading any data. arityOf
// reports the arity of each referenced base relation (from the database on
// a fresh build, from exported tables on a rebuild) and errors on unknown
// names.
func build(q *query.CQ, arityOf func(name string) (int, error)) (*Index, error) {
	if !q.IsFull() {
		return nil, fmt.Errorf("%w: %s", ErrNotFull, q.Name)
	}
	tree, err := hypergraph.FromCQ(q).JoinTree()
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrCyclic, q.Name)
	}

	idx := &Index{
		q:      q,
		head:   append([]string(nil), q.Head...),
		byBase: make(map[string][]*node),
		bases:  make(map[string]*baseSet),
	}
	headPos := make(map[string]int, len(q.Head))
	for i, h := range q.Head {
		headPos[h] = i
	}

	nodes := make([]*node, len(q.Body))
	for i, a := range q.Body {
		arity, err := arityOf(a.Relation)
		if err != nil {
			return nil, err
		}
		if arity != len(a.Terms) {
			return nil, fmt.Errorf("dynaccess: atom %s arity mismatch with relation (%d vs %d)",
				a, len(a.Terms), arity)
		}
		if idx.bases[a.Relation] == nil {
			idx.bases[a.Relation] = &baseSet{arity: arity, byKey: make(map[string]int)}
		}
		vars := a.Vars()
		schema, err := relation.NewSchema(vars...)
		if err != nil {
			return nil, err
		}
		n := &node{
			atom:     a,
			baseName: a.Relation,
			schema:   schema,
			byKey:    make(map[string]int),
			buckets:  make(map[string]*bucket),
		}
		// Compile the atom's selection conditions once.
		firstPos := make(map[string]int)
		for pos, t := range a.Terms {
			if !t.IsVar() {
				n.constChecks = append(n.constChecks, constCheck{pos: pos, val: t.Const})
				continue
			}
			if fp, ok := firstPos[t.Var]; ok {
				n.eqChecks = append(n.eqChecks, [2]int{pos, fp})
			} else {
				firstPos[t.Var] = pos
			}
		}
		n.varPos = make([]int, len(vars))
		n.schemaHeadPos = make([]int, len(vars))
		for vi, v := range vars {
			n.varPos[vi] = firstPos[v]
			hp, ok := headPos[v]
			if !ok {
				return nil, fmt.Errorf("%w: variable %s", ErrNotFull, v)
			}
			n.schemaHeadPos[vi] = hp
		}
		nodes[i] = n
		idx.byBase[a.Relation] = append(idx.byBase[a.Relation], n)
	}

	// Wire the tree (tree.Nodes is in atom order; EdgeID = atom index).
	for i, tn := range tree.Nodes {
		n := nodes[i]
		if tn.Parent == nil {
			idx.root = n
			continue
		}
		p := nodes[tn.Parent.EdgeID]
		shared := n.schema.Intersect(p.schema)
		n.pAttPos, _ = n.schema.Positions(shared)
		keyPos, _ := p.schema.Positions(shared)
		n.parent = p
		n.childIdx = len(p.children)
		p.children = append(p.children, n)
		p.childKeyPos = append(p.childKeyPos, keyPos)
		p.childRev = append(p.childRev, make(map[string][]int))
		p.childBkt = append(p.childBkt, nil)
	}
	idx.nodes = nodes

	// Output assignment: first node containing each head var.
	assigned := make([]bool, len(q.Head))
	for _, n := range nodes {
		for i, hp := range n.schemaHeadPos {
			if !assigned[hp] {
				assigned[hp] = true
				n.outCols = append(n.outCols, hp)
				n.outPos = append(n.outPos, i)
			}
		}
	}
	for i, ok := range assigned {
		if !ok {
			return nil, fmt.Errorf("dynaccess: head variable %q not covered", q.Head[i])
		}
	}
	return idx, nil
}

// New builds the dynamic index for a full acyclic CQ over the current
// contents of db, in linear time.
func New(db *relation.Database, q *query.CQ) (*Index, error) {
	idx, err := build(q, func(name string) (int, error) {
		base, err := db.Relation(name)
		if err != nil {
			return 0, err
		}
		return base.Arity(), nil
	})
	if err != nil {
		return nil, err
	}

	// Bulk load leaf-to-root so weights are available bottom-up. The base
	// relations are read column-wise through a reused scratch row — no
	// per-tuple materialization.
	var load func(n *node) error
	load = func(n *node) error {
		for _, c := range n.children {
			if err := load(c); err != nil {
				return err
			}
		}
		base, err := db.Relation(n.baseName)
		if err != nil {
			return err
		}
		scratch := make(relation.Tuple, base.Arity())
		for i := 0; i < base.Len(); i++ {
			base.ReadTuple(i, scratch)
			if t, ok := n.instantiate(scratch); ok {
				n.insertLocal(t) // bulk load: no cascade needed bottom-up
			}
		}
		return nil
	}
	if err := load(idx.root); err != nil {
		return nil, err
	}
	// Record the base contents (same scan order as the bulk load, so a
	// rebuild from these tables replays tuples into nodes in the same
	// per-node order and reproduces identical bucket layouts).
	for name, bs := range idx.bases {
		base, err := db.Relation(name)
		if err != nil {
			return nil, err
		}
		scratch := make(relation.Tuple, base.Arity())
		for i := 0; i < base.Len(); i++ {
			base.ReadTuple(i, scratch)
			bs.insert(scratch)
		}
	}
	return idx, nil
}

// NewFromTables rebuilds the index for q from previously exported base
// contents (Tables, or a snapshot's dynamic base section): each table's
// tuples are replayed in their original arrival order and the tombstones
// re-applied. The result is structurally identical to the index that
// exported the tables — same bucket layouts, same enumeration order, and
// the same revive positions for future re-inserts — because per-node
// layout depends only on its own relation's arrival order, which the
// tables preserve, and instantiate is injective on matching raw tuples.
func NewFromTables(q *query.CQ, tables []BaseTable) (*Index, error) {
	arities := make(map[string]int, len(tables))
	for _, tb := range tables {
		arities[tb.Name] = tb.Arity
	}
	idx, err := build(q, func(name string) (int, error) {
		ar, ok := arities[name]
		if !ok {
			return 0, fmt.Errorf("dynaccess: no table for relation %q", name)
		}
		return ar, nil
	})
	if err != nil {
		return nil, err
	}
	for _, tb := range tables {
		if _, ok := idx.byBase[tb.Name]; !ok {
			return nil, fmt.Errorf("dynaccess: table %q is not referenced by query %s", tb.Name, q.Name)
		}
		for _, t := range tb.Tuples {
			if len(t) != tb.Arity {
				return nil, fmt.Errorf("dynaccess: table %q tuple arity %d, want %d", tb.Name, len(t), tb.Arity)
			}
			if _, err := idx.insertLocked(tb.Name, t); err != nil {
				return nil, err
			}
		}
		for _, d := range tb.Dead {
			if d < 0 || d >= int64(len(tb.Tuples)) {
				return nil, fmt.Errorf("dynaccess: table %q dead position %d of %d", tb.Name, d, len(tb.Tuples))
			}
			if _, err := idx.deleteLocked(tb.Name, tb.Tuples[d]); err != nil {
				return nil, err
			}
		}
	}
	return idx, nil
}

// Tables exports the index's base contents, sorted by relation name, for
// persistence or rebuild. Tuples are shared with the index, not copied —
// they are never mutated in place, so the export stays valid, but treat it
// as read-only.
func (idx *Index) Tables() []BaseTable {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.tablesLocked()
}

func (idx *Index) tablesLocked() []BaseTable {
	names := make([]string, 0, len(idx.bases))
	for name := range idx.bases {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]BaseTable, 0, len(names))
	for _, name := range names {
		bs := idx.bases[name]
		tb := BaseTable{
			Name:   name,
			Arity:  bs.arity,
			Tuples: append([]relation.Tuple(nil), bs.tuples...),
		}
		for pos, ok := range bs.alive {
			if !ok {
				tb.Dead = append(tb.Dead, int64(pos))
			}
		}
		out = append(out, tb)
	}
	return out
}

// Rebuild constructs a fresh index over the same logical contents — the
// compactor's rebuild-aside seam. Only a read lock is taken (to export the
// tables), so probes on the source continue while the copy is assembled.
func (idx *Index) Rebuild() (*Index, error) {
	return NewFromTables(idx.q, idx.Tables())
}

// ValidateUpdate checks that an update targeting the named base relation
// with the given tuple arity would be accepted, without touching any
// state. Callers that stage side effects around an update (dictionary
// interning, WAL appends) use this to reject garbage before paying them.
func (idx *Index) ValidateUpdate(baseRelation string, arity int) error {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.validateLocked(baseRelation, arity)
}

func (idx *Index) validateLocked(baseRelation string, arity int) error {
	bs, ok := idx.bases[baseRelation]
	if !ok {
		return fmt.Errorf("dynaccess: no atom over relation %q", baseRelation)
	}
	if arity != bs.arity {
		return fmt.Errorf("dynaccess: tuple arity %d, relation %q needs %d", arity, baseRelation, bs.arity)
	}
	return nil
}

// instantiate maps a base tuple through the atom's precompiled conditions
// (constants and repeated variables filter; variable positions project). The
// returned tuple is freshly allocated — raw may be a reused scratch row.
func (n *node) instantiate(raw relation.Tuple) (relation.Tuple, bool) {
	for _, c := range n.constChecks {
		if raw[c.pos] != c.val {
			return nil, false
		}
	}
	for _, e := range n.eqChecks {
		if raw[e[0]] != raw[e[1]] {
			return nil, false
		}
	}
	out := make(relation.Tuple, len(n.varPos))
	for i, p := range n.varPos {
		out[i] = raw[p]
	}
	return out, true
}

// weightOf computes the current weight of the tuple at pos from the cached
// child bucket totals.
func (n *node) weightOf(pos int) int64 {
	if !n.alive[pos] {
		return 0
	}
	w := int64(1)
	for ci := range n.children {
		cb := n.childBkt[ci][pos]
		if cb == nil || cb.w.Total() == 0 {
			return 0
		}
		w *= cb.w.Total()
	}
	return w
}

// insertLocal registers a (new or revived) tuple in this node and returns
// the bucket whose total changed, or nil for a duplicate no-op.
func (n *node) insertLocal(t relation.Tuple) *bucket {
	key := t.Key()
	if pos, ok := n.byKey[key]; ok {
		if n.alive[pos] {
			return nil
		}
		// Revive a tombstone.
		n.alive[pos] = true
		b := n.tupleBucket[pos]
		b.w.Set(n.tupleOrd[pos], n.weightOf(pos))
		return b
	}
	pos := len(n.tuples)
	n.tuples = append(n.tuples, t)
	n.alive = append(n.alive, true)
	n.byKey[key] = pos
	bkey := t.ProjectKey(n.pAttPos)
	b := n.buckets[bkey]
	if b == nil {
		b = &bucket{key: bkey}
		n.buckets[bkey] = b
	}
	n.tupleBucket = append(n.tupleBucket, b)
	n.tupleOrd = append(n.tupleOrd, len(b.tuples))
	b.tuples = append(b.tuples, pos)
	for ci, c := range n.children {
		ck := t.ProjectKey(n.childKeyPos[ci])
		n.childRev[ci][ck] = append(n.childRev[ci][ck], pos)
		// Cache the child bucket pointer now if the bucket already exists;
		// otherwise the cascade fired by its creation will fill it in.
		n.childBkt[ci] = append(n.childBkt[ci], c.buckets[ck])
	}
	b.w.Append(n.weightOf(pos))
	return b
}

// cascade propagates a child-bucket total change to ancestors: every parent
// tuple matching the changed bucket's key gets its weight recomputed. It
// also completes the parents' bucket-pointer caches: a parent tuple that
// predates the child bucket's creation still holds a nil pointer, and this
// is exactly the moment (first total change = creation or revival) it gets
// resolved.
func (idx *Index) cascade(n *node, changed map[*bucket]bool) {
	for len(changed) > 0 && n.parent != nil {
		p := n.parent
		parentChanged := make(map[*bucket]bool)
		for b := range changed {
			cache := p.childBkt[n.childIdx]
			for _, pos := range p.childRev[n.childIdx][b.key] {
				cache[pos] = b
				pb := p.tupleBucket[pos]
				old := pb.w.Value(p.tupleOrd[pos])
				neww := p.weightOf(pos)
				if old != neww {
					pb.w.Set(p.tupleOrd[pos], neww)
					parentChanged[pb] = true
				}
			}
		}
		n, changed = p, parentChanged
	}
}

// Insert adds a base-relation tuple to the index (set semantics: duplicates
// are no-ops). The tuple is routed to every atom over that relation. It
// reports whether any node changed. NOTE: Insert updates the index, not the
// relation.Database it was built from.
func (idx *Index) Insert(baseRelation string, raw relation.Tuple) (bool, error) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	return idx.insertLocked(baseRelation, raw)
}

func (idx *Index) insertLocked(baseRelation string, raw relation.Tuple) (bool, error) {
	if err := idx.validateLocked(baseRelation, len(raw)); err != nil {
		return false, err
	}
	// The base set records the tuple even when no atom's conditions match
	// it: logically it is in the relation, and a rebuild must replay it
	// through the same filters.
	idx.bases[baseRelation].insert(raw)
	any := false
	for _, n := range idx.byBase[baseRelation] {
		t, match := n.instantiate(raw)
		if !match {
			continue
		}
		if b := n.insertLocal(t); b != nil {
			idx.cascade(n, map[*bucket]bool{b: true})
			any = true
		}
	}
	return any, nil
}

// Delete removes a base-relation tuple (a no-op if absent). It reports
// whether anything changed.
func (idx *Index) Delete(baseRelation string, raw relation.Tuple) (bool, error) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	return idx.deleteLocked(baseRelation, raw)
}

func (idx *Index) deleteLocked(baseRelation string, raw relation.Tuple) (bool, error) {
	if err := idx.validateLocked(baseRelation, len(raw)); err != nil {
		return false, err
	}
	idx.bases[baseRelation].delete(raw)
	any := false
	for _, n := range idx.byBase[baseRelation] {
		t, match := n.instantiate(raw)
		if !match {
			continue
		}
		pos, exists := n.byKey[t.Key()]
		if !exists || !n.alive[pos] {
			continue
		}
		n.alive[pos] = false
		b := n.tupleBucket[pos]
		b.w.Set(n.tupleOrd[pos], 0)
		idx.cascade(n, map[*bucket]bool{b: true})
		any = true
	}
	return any, nil
}

// Count returns the current |Q(D)| in constant time.
func (idx *Index) Count() int64 {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.countLocked()
}

// countLocked is Count with the lock already held (RWMutex read locks are
// not re-entrant when a writer is queued, so internal callers must not call
// the public method).
func (idx *Index) countLocked() int64 {
	b := idx.root.buckets[""]
	if b == nil {
		return 0
	}
	return b.w.Total()
}

// Head returns the output variable order.
func (idx *Index) Head() []string { return idx.head }

// Access returns the j-th answer of the current enumeration order. The order
// is deterministic between updates but may change across them (deleted
// ranges close up; insertions append within buckets).
func (idx *Index) Access(j int64) (relation.Tuple, error) {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.accessLocked(j)
}

// AccessInto is Access writing into a caller-provided buffer (len == arity),
// avoiding the answer allocation in tight loops.
func (idx *Index) AccessInto(j int64, answer relation.Tuple) error {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.accessIntoLocked(j, answer)
}

func (idx *Index) accessLocked(j int64) (relation.Tuple, error) {
	answer := make(relation.Tuple, len(idx.head))
	if err := idx.accessIntoLocked(j, answer); err != nil {
		return nil, err
	}
	return answer, nil
}

// accessIntoLocked is the single bounds-checked probe both entry points
// share; the caller holds at least the read lock.
func (idx *Index) accessIntoLocked(j int64, answer relation.Tuple) error {
	if j < 0 || j >= idx.countLocked() {
		return access.ErrOutOfBounds
	}
	idx.subtreeAccess(idx.root, idx.root.buckets[""], j, answer)
	return nil
}

func (idx *Index) subtreeAccess(n *node, b *bucket, j int64, answer relation.Tuple) {
	ord := b.w.FindPrefix(j)
	pos := b.tuples[ord]
	t := n.tuples[pos]
	for k, col := range n.outCols {
		answer[col] = t[n.outPos[k]]
	}
	if len(n.children) == 0 {
		return
	}
	// Child buckets come from the per-tuple pointer cache: a tuple with
	// positive weight has all child buckets resolved (weightOf returned > 0
	// through the same pointers).
	rem := j - b.w.Prefix(ord)
	for ci := len(n.children) - 1; ci >= 0; ci-- {
		cb := n.childBkt[ci][pos]
		total := cb.w.Total()
		ji := rem % total
		rem /= total
		idx.subtreeAccess(n.children[ci], cb, ji, answer)
	}
}

// InvertedAccess returns the current position of an answer, or ok=false.
func (idx *Index) InvertedAccess(answer relation.Tuple) (int64, bool) {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.invertedLocked(answer)
}

func (idx *Index) invertedLocked(answer relation.Tuple) (int64, bool) {
	if len(answer) != len(idx.head) {
		return 0, false
	}
	return idx.invertedSubtree(idx.root, answer)
}

func (idx *Index) invertedSubtree(n *node, answer relation.Tuple) (int64, bool) {
	// Locate this node's tuple: encode the projected key into a stack buffer
	// (the canonical encoder) — no intermediate tuple, no heap key.
	var kb [relation.KeyBufCap]byte
	key := answer.AppendProjectedKey(relation.KeyScratch(&kb, len(n.schemaHeadPos)), n.schemaHeadPos)
	pos, ok := n.byKey[string(key)]
	if !ok || !n.alive[pos] {
		return 0, false
	}
	b := n.tupleBucket[pos]
	ord := n.tupleOrd[pos]
	if b.w.Value(ord) == 0 {
		return 0, false
	}
	var offset int64
	for ci, c := range n.children {
		ji, ok := idx.invertedSubtree(c, answer)
		if !ok {
			return 0, false
		}
		cb := n.childBkt[ci][pos]
		if cb == nil {
			return 0, false
		}
		offset = offset*cb.w.Total() + ji
	}
	return b.w.Prefix(ord) + offset, true
}

// Contains reports whether answer is currently in Q(D).
func (idx *Index) Contains(answer relation.Tuple) bool {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	_, ok := idx.invertedLocked(answer)
	return ok
}

// Sample returns a uniformly random current answer, or ok=false when empty.
func (idx *Index) Sample(rng *rand.Rand) (relation.Tuple, bool) {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	n := idx.countLocked()
	if n == 0 {
		return nil, false
	}
	t, err := idx.accessLocked(rng.Int63n(n))
	if err != nil {
		return nil, false
	}
	return t, true
}

// SampleN returns k uniformly random current answers drawn independently
// (with replacement), all against one consistent snapshot of the index: the
// read lock is held across the batch, so no update interleaves mid-batch.
// It returns fewer than k (possibly zero) answers only when the index is
// empty.
func (idx *Index) SampleN(k int64, rng *rand.Rand) []relation.Tuple {
	if k <= 0 {
		return nil
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	n := idx.countLocked()
	if n == 0 {
		return nil
	}
	c := k // initial capacity only: sampling is with replacement, so k is unbounded
	if c > 1024 {
		c = 1024
	}
	out := make([]relation.Tuple, 0, c)
	for int64(len(out)) < k {
		t, err := idx.accessLocked(rng.Int63n(n))
		if err != nil {
			break
		}
		out = append(out, t)
	}
	return out
}
