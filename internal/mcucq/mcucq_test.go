package mcucq

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/relation"
)

// alignedDB builds a database where the union disjuncts are the same query
// over different selections of a shared base relation — the structurally
// aligned situation mc-UCQs are designed for (like QS7 ∪ QC7).
func alignedDB(seed int64, n int) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()
	l := db.MustCreate("L", "o", "s") // spine
	nat := db.MustCreate("N", "s", "m")
	for i := 0; i < n; i++ {
		l.MustInsert(relation.Value(rng.Intn(20)), relation.Value(rng.Intn(8)))
	}
	for s := 0; s < 8; s++ {
		nat.MustInsert(relation.Value(s), relation.Value(s%3))
	}
	// Selections of N: m == 0 and m <= 1 (overlapping!).
	db.Add(nat.Filter("N0", func(t relation.Tuple) bool { return t[1] == 0 }))
	db.Add(nat.Filter("N1", func(t relation.Tuple) bool { return t[1] <= 1 }))
	db.Add(nat.Filter("N2", func(t relation.Tuple) bool { return t[1] >= 1 }))
	return db
}

func alignedUCQ2() *query.UCQ {
	q1 := query.MustCQ("q1", []string{"o", "s", "m"},
		query.NewAtom("L", query.V("o"), query.V("s")),
		query.NewAtom("N0", query.V("s"), query.V("m")))
	q2 := query.MustCQ("q2", []string{"o", "s", "m"},
		query.NewAtom("L", query.V("o"), query.V("s")),
		query.NewAtom("N1", query.V("s"), query.V("m")))
	return query.MustUCQ("u2", q1, q2)
}

func alignedUCQ3() *query.UCQ {
	mk := func(name, rel string) *query.CQ {
		return query.MustCQ(name, []string{"o", "s", "m"},
			query.NewAtom("L", query.V("o"), query.V("s")),
			query.NewAtom(rel, query.V("s"), query.V("m")))
	}
	return query.MustUCQ("u3", mk("q1", "N0"), mk("q2", "N1"), mk("q3", "N2"))
}

func TestMCUCQMatchesOracle2(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db := alignedDB(seed, 60)
		u := alignedUCQ2()
		m, err := New(db, u, Options{Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := naive.EvaluateUCQ(db, u)
		if err != nil {
			t.Fatal(err)
		}
		if m.Count() != int64(len(want)) {
			t.Fatalf("seed %d: Count = %d, oracle %d", seed, m.Count(), len(want))
		}
		var got []relation.Tuple
		seen := make(map[string]bool)
		for j := int64(0); j < m.Count(); j++ {
			a, err := m.Access(j)
			if err != nil {
				t.Fatalf("Access(%d): %v", j, err)
			}
			if seen[a.Key()] {
				t.Fatalf("seed %d: duplicate at %d: %v", seed, j, a)
			}
			seen[a.Key()] = true
			got = append(got, a)
		}
		if !naive.SameAnswerSet(got, want) {
			t.Fatalf("seed %d: wrong answer set", seed)
		}
	}
}

func TestMCUCQMatchesOracle3(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db := alignedDB(seed+50, 50)
		u := alignedUCQ3()
		m, err := New(db, u, Options{Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := naive.EvaluateUCQ(db, u)
		if err != nil {
			t.Fatal(err)
		}
		if m.Count() != int64(len(want)) {
			t.Fatalf("seed %d: Count = %d, oracle %d", seed, m.Count(), len(want))
		}
		seen := make(map[string]bool)
		var got []relation.Tuple
		for j := int64(0); j < m.Count(); j++ {
			a, err := m.Access(j)
			if err != nil {
				t.Fatal(err)
			}
			if seen[a.Key()] {
				t.Fatalf("duplicate at %d", j)
			}
			seen[a.Key()] = true
			got = append(got, a)
		}
		if !naive.SameAnswerSet(got, want) {
			t.Fatalf("seed %d: wrong answer set (3-way)", seed)
		}
	}
}

func TestMCUCQUseLargestAgrees(t *testing.T) {
	db := alignedDB(7, 60)
	u := alignedUCQ3()
	direct, err := New(db, u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	largest, err := New(db, u, Options{UseLargest: true})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Count() != largest.Count() {
		t.Fatal("counts differ")
	}
	for j := int64(0); j < direct.Count(); j++ {
		a, err1 := direct.Access(j)
		b, err2 := largest.Access(j)
		if err1 != nil || err2 != nil || !a.Equal(b) {
			t.Fatalf("formulations disagree at %d: %v vs %v", j, a, b)
		}
	}
}

func TestMCUCQAccessOutOfBounds(t *testing.T) {
	db := alignedDB(1, 30)
	m, err := New(db, alignedUCQ2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Access(-1); !errors.Is(err, access.ErrOutOfBounds) {
		t.Fatal("negative accepted")
	}
	if _, err := m.Access(m.Count()); !errors.Is(err, access.ErrOutOfBounds) {
		t.Fatal("count accepted")
	}
}

func TestMCUCQTest(t *testing.T) {
	db := alignedDB(2, 40)
	u := alignedUCQ2()
	m, err := New(db, u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.EvaluateUCQ(db, u)
	for _, a := range want {
		if !m.Test(a) {
			t.Fatalf("answer %v tests false", a)
		}
	}
	if m.Test(relation.Tuple{1000, 1000, 1000}) {
		t.Fatal("non-answer tests true")
	}
}

func TestMCUCQDisjointUnion(t *testing.T) {
	// Like QA ∪ QE: selections that cannot overlap.
	db := relation.NewDatabase()
	l := db.MustCreate("L", "o", "s")
	nat := db.MustCreate("N", "s", "m")
	for i := 0; i < 50; i++ {
		l.MustInsert(relation.Value(i%17), relation.Value(i%6))
	}
	for s := 0; s < 6; s++ {
		nat.MustInsert(relation.Value(s), relation.Value(s%2))
	}
	db.Add(nat.Filter("NA", func(t relation.Tuple) bool { return t[1] == 0 }))
	db.Add(nat.Filter("NB", func(t relation.Tuple) bool { return t[1] == 1 }))
	q1 := query.MustCQ("qa", []string{"o", "s", "m"},
		query.NewAtom("L", query.V("o"), query.V("s")),
		query.NewAtom("NA", query.V("s"), query.V("m")))
	q2 := query.MustCQ("qe", []string{"o", "s", "m"},
		query.NewAtom("L", query.V("o"), query.V("s")),
		query.NewAtom("NB", query.V("s"), query.V("m")))
	u := query.MustUCQ("u", q1, q2)
	m, err := New(db, u, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.EvaluateUCQ(db, u)
	if m.Count() != int64(len(want)) {
		t.Fatalf("Count = %d, want %d", m.Count(), len(want))
	}
	var got []relation.Tuple
	for j := int64(0); j < m.Count(); j++ {
		a, err := m.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, a)
	}
	if !naive.SameAnswerSet(got, want) {
		t.Fatal("disjoint union wrong")
	}
}

func TestMCUCQIdenticalDisjuncts(t *testing.T) {
	db := alignedDB(3, 40)
	q1 := query.MustCQ("q1", []string{"o", "s", "m"},
		query.NewAtom("L", query.V("o"), query.V("s")),
		query.NewAtom("N1", query.V("s"), query.V("m")))
	q2 := query.MustCQ("q2", []string{"o", "s", "m"},
		query.NewAtom("L", query.V("o"), query.V("s")),
		query.NewAtom("N1", query.V("s"), query.V("m")))
	u := query.MustUCQ("u", q1, q2)
	m, err := New(db, u, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.EvaluateUCQ(db, u)
	if m.Count() != int64(len(want)) {
		t.Fatalf("identical-disjunct count = %d, want %d", m.Count(), len(want))
	}
}

// TestMCUCQPermutationUniform checks full-order uniformity on a tiny union.
func TestMCUCQPermutationUniform(t *testing.T) {
	db := relation.NewDatabase()
	l := db.MustCreate("L", "o", "s")
	nat := db.MustCreate("N", "s", "m")
	l.MustInsert(1, 0)
	l.MustInsert(2, 1)
	nat.MustInsert(0, 0)
	nat.MustInsert(1, 1)
	db.Add(nat.Filter("N0", func(t relation.Tuple) bool { return t[1] == 0 }))
	db.Add(nat.Filter("N1", func(t relation.Tuple) bool { return t[1] <= 1 }))
	u := alignedUCQ2()
	m, err := New(db, u, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2 {
		t.Fatalf("Count = %d, want 2", m.Count())
	}
	rng := rand.New(rand.NewSource(5))
	counts := map[string]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		p := m.Permute(rng)
		sig := ""
		for {
			a, ok := p.Next()
			if !ok {
				break
			}
			sig += a.Key()
		}
		counts[sig]++
	}
	if len(counts) != 2 {
		t.Fatalf("orders observed: %d, want 2", len(counts))
	}
	for _, c := range counts {
		if math.Abs(float64(c)-trials/2) > 6*math.Sqrt(trials/2) {
			t.Fatalf("order count %d, expected ~%d", c, trials/2)
		}
	}
}

func TestMCUCQPermutationComplete(t *testing.T) {
	db := alignedDB(9, 50)
	u := alignedUCQ3()
	m, err := New(db, u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.EvaluateUCQ(db, u)
	p := m.Permute(rand.New(rand.NewSource(10)))
	if p.Remaining() != int64(len(want)) {
		t.Fatal("Remaining wrong")
	}
	seen := make(map[string]bool)
	var got []relation.Tuple
	for {
		a, ok := p.Next()
		if !ok {
			break
		}
		if seen[a.Key()] {
			t.Fatalf("duplicate %v", a)
		}
		seen[a.Key()] = true
		got = append(got, a)
	}
	if !naive.SameAnswerSet(got, want) {
		t.Fatal("permutation incomplete")
	}
}

// TestMCUCQFourWayUnion exercises the deepest recursion so far: four
// disjuncts, so level 0 alone prepares 7 intersection CQs (2³−1) and the
// inclusion–exclusion signs must all line up.
func TestMCUCQFourWayUnion(t *testing.T) {
	db := relation.NewDatabase()
	l := db.MustCreate("L", "o", "s")
	nat := db.MustCreate("N", "s", "m")
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		l.MustInsert(relation.Value(rng.Intn(25)), relation.Value(rng.Intn(10)))
	}
	for s := 0; s < 10; s++ {
		nat.MustInsert(relation.Value(s), relation.Value(s%4))
	}
	for i := 0; i < 4; i++ {
		threshold := relation.Value(i)
		db.Add(nat.Filter(fmt.Sprintf("NF%d", i), func(t relation.Tuple) bool {
			return t[1] <= threshold
		}))
	}
	mk := func(i int) *query.CQ {
		return query.MustCQ(fmt.Sprintf("q%d", i), []string{"o", "s", "m"},
			query.NewAtom("L", query.V("o"), query.V("s")),
			query.NewAtom(fmt.Sprintf("NF%d", i), query.V("s"), query.V("m")))
	}
	u := query.MustUCQ("u4", mk(0), mk(1), mk(2), mk(3))
	m, err := New(db, u, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.EvaluateUCQ(db, u)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != int64(len(want)) {
		t.Fatalf("Count = %d, oracle %d", m.Count(), len(want))
	}
	seen := make(map[string]bool)
	var got []relation.Tuple
	for j := int64(0); j < m.Count(); j++ {
		a, err := m.Access(j)
		if err != nil {
			t.Fatalf("Access(%d): %v", j, err)
		}
		if seen[a.Key()] {
			t.Fatalf("duplicate at %d", j)
		}
		seen[a.Key()] = true
		got = append(got, a)
	}
	if !naive.SameAnswerSet(got, want) {
		t.Fatal("4-way union wrong")
	}
}

func TestMCUCQEmptyDisjuncts(t *testing.T) {
	// First disjunct empty: phase 2 of Algorithm 7 carries everything.
	db := relation.NewDatabase()
	l := db.MustCreate("L", "o", "s")
	nat := db.MustCreate("N", "s", "m")
	for i := 0; i < 20; i++ {
		l.MustInsert(relation.Value(i), relation.Value(i%4))
	}
	for s := 0; s < 4; s++ {
		nat.MustInsert(relation.Value(s), relation.Value(s))
	}
	db.Add(nat.Filter("Nnone", func(t relation.Tuple) bool { return false }))
	db.Add(nat.Filter("Nall", func(t relation.Tuple) bool { return true }))
	q1 := query.MustCQ("q1", []string{"o", "s", "m"},
		query.NewAtom("L", query.V("o"), query.V("s")),
		query.NewAtom("Nnone", query.V("s"), query.V("m")))
	q2 := query.MustCQ("q2", []string{"o", "s", "m"},
		query.NewAtom("L", query.V("o"), query.V("s")),
		query.NewAtom("Nall", query.V("s"), query.V("m")))

	for _, u := range []*query.UCQ{
		query.MustUCQ("emptyFirst", q1, q2),
		query.MustUCQ("emptySecond", q2, q1),
		query.MustUCQ("bothEmpty", q1, q1),
	} {
		m, err := New(db, u, Options{Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", u.Name, err)
		}
		want, _ := naive.EvaluateUCQ(db, u)
		if m.Count() != int64(len(want)) {
			t.Fatalf("%s: Count = %d, oracle %d", u.Name, m.Count(), len(want))
		}
		var got []relation.Tuple
		for j := int64(0); j < m.Count(); j++ {
			a, err := m.Access(j)
			if err != nil {
				t.Fatalf("%s: Access(%d): %v", u.Name, j, err)
			}
			got = append(got, a)
		}
		if !naive.SameAnswerSet(got, want) {
			t.Fatalf("%s: wrong answers", u.Name)
		}
	}
}

func TestMCUCQRejectsNonFreeConnexIntersection(t *testing.T) {
	// Example 5.1's union: Q1(x,y,z) :- R(x,y), S(y,z); Q2 :- S(y,z), T(x,z).
	// Each is free-connex but the intersection is the (cyclic) triangle
	// query, so the mc-UCQ construction must fail.
	db := relation.NewDatabase()
	db.MustCreate("R", "x", "y")
	db.MustCreate("S", "y", "z")
	db.MustCreate("T", "x", "z")
	q1 := query.MustCQ("q1", []string{"x", "y", "z"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")))
	q2 := query.MustCQ("q2", []string{"x", "y", "z"},
		query.NewAtom("S", query.V("y"), query.V("z")),
		query.NewAtom("T", query.V("x"), query.V("z")))
	u := query.MustUCQ("u", q1, q2)
	if _, err := New(db, u, Options{}); err == nil {
		t.Fatal("Example 5.1 union accepted by mc-UCQ construction")
	}
}
