package mcucq

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

var errInconsistent = errors.New("concurrent union probe returned inconsistent result")

// unionFixture builds a 3-disjunct overlapping union over one binary
// relation (selections of R by range), which is mutually compatible by
// construction.
func unionFixture(t *testing.T) (*relation.Database, *query.UCQ) {
	t.Helper()
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		r.MustInsert(relation.Value(rng.Intn(40)), relation.Value(rng.Intn(12)))
		s.MustInsert(relation.Value(rng.Intn(12)), relation.Value(rng.Intn(40)))
	}
	q1 := query.MustCQ("q1", []string{"a", "b"},
		query.NewAtom("R", query.V("a"), query.V("b")))
	q2 := query.MustCQ("q2", []string{"a", "b"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	q3 := query.MustCQ("q3", []string{"b", "c"},
		query.NewAtom("S", query.V("b"), query.V("c")))
	// q3 has a different head meaning but equal arity; union q1∪q2 plus a
	// same-shape selection keeps all intersections free-connex.
	u := query.MustUCQ("u", q1, q2, q3)
	return db, u
}

// TestParallelPrepareMatchesSerial: Options.Workers must not change the
// structure — counts, every answer, and every inverted rank agree with the
// serial preparation.
func TestParallelPrepareMatchesSerial(t *testing.T) {
	db, u := unionFixture(t)
	serial, err := New(db, u, Options{Workers: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(db, u, Options{Workers: 8, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Count() != par.Count() {
		t.Fatalf("count diverged: %d vs %d", serial.Count(), par.Count())
	}
	for j := int64(0); j < serial.Count(); j++ {
		a, err := serial.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("Access(%d): %v vs %v", j, a, b)
		}
	}
}

// TestConcurrentUnionProbes hammers one shared MCUCQ from many goroutines
// with Access, Test and batched permutation draws (run with -race).
func TestConcurrentUnionProbes(t *testing.T) {
	db, u := unionFixture(t)
	m, err := New(db, u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := m.Count()
	if n == 0 {
		t.Skip("degenerate")
	}
	want := make([]relation.Tuple, n)
	for j := range want {
		a, err := m.Access(int64(j))
		if err != nil {
			t.Fatal(err)
		}
		want[j] = a
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			local := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				switch i % 3 {
				case 0:
					j := local.Int63n(n)
					a, err := m.Access(j)
					if err != nil {
						errs <- err
						return
					}
					if !a.Equal(want[j]) || !m.Test(a) {
						errs <- errInconsistent
						return
					}
				case 1:
					if m.Test(relation.Tuple{relation.Value(1 << 40), relation.Value(1)}) {
						errs <- errInconsistent
						return
					}
				case 2:
					// Each goroutine owns its permutation cursor; the cursors
					// share the index. NextN fans probes out internally.
					p := m.Permute(local)
					batch := p.NextN(16, 4)
					for _, a := range batch {
						if !m.Test(a) {
							errs <- errInconsistent
							return
						}
					}
				}
			}
		}(int64(500 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPermutationNextNMatchesNext: for the same rng seed, NextN must emit
// exactly the sequence that repeated Next calls emit.
func TestPermutationNextNMatchesNext(t *testing.T) {
	db, u := unionFixture(t)
	m, err := New(db, u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() == 0 {
		t.Skip("degenerate")
	}
	serial := m.Permute(rand.New(rand.NewSource(77)))
	var want []relation.Tuple
	for {
		a, ok := serial.Next()
		if !ok {
			break
		}
		want = append(want, a)
	}
	batched := m.Permute(rand.New(rand.NewSource(77)))
	var got []relation.Tuple
	for {
		chunk := batched.NextN(7, 3)
		if len(chunk) == 0 {
			break
		}
		got = append(got, chunk...)
	}
	if len(got) != len(want) {
		t.Fatalf("emitted %d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("position %d: %v vs %v", i, got[i], want[i])
		}
	}
}
