// Package mcucq implements random access for mutually-compatible UCQs
// (Section 5.2 of the paper, Theorem 5.5): given a union Q1 ∪ ... ∪ Qm of
// free-connex CQs such that every intersection CQ is free-connex and the
// enumeration orders are compatible, it provides
//
//   - Count in O(2^m) time after linear preprocessing (inclusion–exclusion),
//   - Access(j) in O(2^m log² |D|) (Durand–Strozecki union trick,
//     Algorithms 6–8, Lemma A.2), and
//   - a uniformly random permutation with O(log²) delay via Theorem 3.7.
//
// Compatibility is not an extra input: the construction inherits it from the
// deterministic, order-preserving pipeline (relation filters, instantiation,
// reduction and GYO are all order-preserving and structural), exactly as in
// the authors' implementation. Use Options.Verify to check it explicitly.
//
// # Concurrency contract
//
// New prepares the m disjunct indexes and the up-to-2^m intersection indexes
// on a worker pool (Options.Workers) — they are mutually independent — and
// assembles the recursive union serially, so the structure is identical to a
// serial build. A prepared MCUCQ is immutable: Count, Access, Test and
// VerifyCompatibility are safe from any number of goroutines. Permutation
// cursors are single-consumer; use Permutation.NextN to fan one consumer's
// probes across cores.
package mcucq

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/access"
	"repro/internal/cqenum"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/shuffle"
)

// ErrIncompatible is returned by VerifyCompatibility (and by New when
// Options.Verify is set) if some intersection's enumeration order is not a
// subsequence of its first disjunct's order.
var ErrIncompatible = errors.New("mcucq: enumeration orders are not compatible")

// SetAccess is the read-only access interface of a set in the union.
type SetAccess interface {
	Count() int64
	Access(j int64) (relation.Tuple, error)
	Test(t relation.Tuple) bool
}

// RankedSet additionally exposes the inverted access (rank) of an element.
type RankedSet interface {
	SetAccess
	InvAcc(t relation.Tuple) (int64, bool)
}

// indexSet adapts access.Index to RankedSet.
type indexSet struct{ idx *access.Index }

func (s indexSet) Count() int64                           { return s.idx.Count() }
func (s indexSet) Access(j int64) (relation.Tuple, error) { return s.idx.Access(j) }
func (s indexSet) Test(t relation.Tuple) bool             { return s.idx.Contains(t) }
func (s indexSet) InvAcc(t relation.Tuple) (int64, bool)  { return s.idx.InvertedAccess(t) }

// union provides random access to A ∪ B where A = first and B = rest
// (Algorithm 7), with Algorithm 8 replacing the (A∩B).InvAcc call by
// inclusion–exclusion over the intersection sets ts.
type union struct {
	first RankedSet // A = S_ℓ
	rest  SetAccess // B = S_{ℓ+1} ∪ ... ∪ S_m (nil at the innermost level)

	// ts[i] is T_{ℓ,I} for the i-th non-empty I ⊆ [ℓ+1, m], with its
	// inclusion–exclusion sign (+1 for odd |I|, -1 for even).
	ts    []signedSet
	inter int64 // |A ∩ B| via inclusion–exclusion
	count int64 // |A ∪ B|

	// useLargest switches Compute-k to the two-step Largest-then-InvAcc
	// formulation of the paper's appendix (for the ablation benchmark); the
	// default computes the rank directly with one binary search.
	useLargest bool
}

type signedSet struct {
	set  RankedSet
	sign int64
}

func (u *union) Count() int64 { return u.count }

func (u *union) Test(t relation.Tuple) bool {
	if u.first.Test(t) {
		return true
	}
	if u.rest != nil {
		return u.rest.Test(t)
	}
	return false
}

// Access implements Algorithm 7 (0-based).
func (u *union) Access(j int64) (relation.Tuple, error) {
	if j < 0 || j >= u.count {
		return nil, access.ErrOutOfBounds
	}
	nA := u.first.Count()
	if j < nA {
		a, err := u.first.Access(j)
		if err != nil {
			return nil, err
		}
		if u.rest == nil || !u.rest.Test(a) {
			return a, nil
		}
		// a is in A ∩ B: the j-th output of the union trick is the k-th
		// element of B (1-based k = |{a_0..a_j} ∩ B|, Algorithm 8).
		k := u.computeK(j)
		return u.rest.Access(k - 1)
	}
	// Phase 2: remaining elements of B after |A ∩ B| were consumed.
	return u.rest.Access(j - nA + u.inter)
}

// computeK returns |{a_0..a_j} ∩ B| via inclusion–exclusion over the
// intersection sets (Algorithm 8): for each T = T_{ℓ,I}, the number of
// elements of T whose rank in A is ≤ j. Compatibility makes rank(T.Access(r))
// strictly increasing in r, so one binary search per T suffices (O(log²)).
func (u *union) computeK(j int64) int64 {
	var k int64
	for _, t := range u.ts {
		k += t.sign * u.countUpTo(t.set, j)
	}
	return k
}

// countUpTo returns |{c ∈ T : rankA(c) ≤ j}|.
func (u *union) countUpTo(t RankedSet, j int64) int64 {
	n := t.Count()
	if n == 0 {
		return 0
	}
	if u.useLargest {
		return u.countUpToViaLargest(t, j, n)
	}
	// Direct form (the implementation shortcut noted in Section 6.1): find
	// the first r with rankA(T[r]) > j; that r is the count. When T is a
	// plain index, the log n probe tuples of the search share one scratch
	// buffer instead of allocating each.
	if is, ok := t.(indexSet); ok {
		scratch := make(relation.Tuple, len(is.idx.Head()))
		r := sort.Search(int(n), func(r int) bool {
			if err := is.idx.AccessInto(int64(r), scratch); err != nil {
				return true
			}
			rank, ok := u.first.InvAcc(scratch)
			if !ok {
				return true
			}
			return rank > j
		})
		return int64(r)
	}
	r := sort.Search(int(n), func(r int) bool {
		c, err := t.Access(int64(r))
		if err != nil {
			return true
		}
		rank, ok := u.first.InvAcc(c)
		if !ok {
			// T ⊆ A by construction; treat violations as "greater".
			return true
		}
		return rank > j
	})
	return int64(r)
}

// countUpToViaLargest is the literal Theorem 5.5 formulation: binary-search
// the largest element c of T that precedes position j in A's order, then
// return T.InvAcc(c) + 1.
func (u *union) countUpToViaLargest(t RankedSet, j, n int64) int64 {
	var largest relation.Tuple
	lo, hi := int64(0), n-1
	for lo <= hi {
		mid := (lo + hi) / 2
		c, err := t.Access(mid)
		if err != nil {
			break
		}
		rank, ok := u.first.InvAcc(c)
		if !ok || rank > j {
			hi = mid - 1
		} else {
			largest = c
			lo = mid + 1
		}
	}
	if largest == nil {
		return 0
	}
	r, ok := t.InvAcc(largest)
	if !ok {
		return 0
	}
	return r + 1
}

// Options tunes New.
type Options struct {
	// Reduce is passed through to every CQ preparation.
	Reduce reduce.Options
	// Verify runs VerifyCompatibility after construction (costs an extra
	// enumeration of every intersection).
	Verify bool
	// UseLargest selects the appendix formulation of Compute-k (ablation).
	UseLargest bool
	// Workers caps the goroutines preparing disjunct and intersection
	// indexes. 0 means parallel.Workers(); 1 forces serial preparation.
	Workers int
}

// MCUCQ is the prepared random-access structure of Theorem 5.5.
type MCUCQ struct {
	u     *query.UCQ
	top   SetAccess
	count int64

	// firsts[ℓ] is S_ℓ's index; inters[ℓ] the T_{ℓ,I} structures (for
	// verification and diagnostics).
	firsts []RankedSet
	levels []*union

	// indexes holds every prepared index in deterministic job order (the m
	// disjuncts, then each level's intersections in mask order) — the
	// serialization order Restore consumes.
	indexes []*access.Index
}

// Indexes returns the prepared disjunct and intersection indexes in the
// deterministic job order New built them: the m disjunct indexes first,
// then level 0's intersections in mask order, then level 1's, and so on.
// This is exactly the order Restore expects back.
func (m *MCUCQ) Indexes() []*access.Index { return m.indexes }

// NumDisjuncts returns m, the number of disjuncts of the union.
func (m *MCUCQ) NumDisjuncts() int { return len(m.firsts) }

// New prepares every disjunct and every required intersection CQ (all in
// linear time each, mutually independent and hence run on a worker pool) and
// assembles the recursive union access. It fails if any disjunct or
// intersection is not free-connex.
func New(db *relation.Database, u *query.UCQ, opts Options) (*MCUCQ, error) {
	m := len(u.Disjuncts)

	// Phase 1 (serial, cheap): lay out every preparation job — the m
	// disjuncts plus, per level ℓ, one intersection CQ for each non-empty
	// I ⊆ [ℓ+1, m), in mask order.
	type prepJob struct {
		q        *query.CQ
		kind     string // "disjunct" | "intersection"
		sign     int64  // intersections only
		prepared *cqenum.CQ
	}
	disjuncts := make([]*prepJob, m)
	for i, q := range u.Disjuncts {
		disjuncts[i] = &prepJob{q: q, kind: "disjunct"}
	}
	levelJobs := make([][]*prepJob, m) // levelJobs[l], mask order
	for l := m - 2; l >= 0; l-- {
		others := make([]int, 0, m-l-1)
		for i := l + 1; i < m; i++ {
			others = append(others, i)
		}
		for mask := 1; mask < (1 << len(others)); mask++ {
			idx := []int{l}
			for b, i := range others {
				if mask&(1<<b) != 0 {
					idx = append(idx, i)
				}
			}
			qi, err := u.Intersection(intersectionName(u, idx), idx)
			if err != nil {
				return nil, err
			}
			// |I| = len(idx)-1 members beyond ℓ; the inclusion–exclusion
			// sign is (-1)^{|I|+1}: positive for odd |I|.
			sign := int64(-1)
			if (len(idx)-1)%2 == 1 {
				sign = 1
			}
			levelJobs[l] = append(levelJobs[l], &prepJob{q: qi, kind: "intersection", sign: sign})
		}
	}
	jobs := append([]*prepJob{}, disjuncts...)
	for _, lj := range levelJobs {
		jobs = append(jobs, lj...)
	}

	// Phase 2 (parallel): prepare all indexes. Each job writes only its own
	// slot; cqenum.Prepare only reads the shared database. Workers also caps
	// each index's internal build fan-out, so Workers=1 is fully serial.
	build := access.BuildOptions{Workers: opts.Workers}
	if err := parallel.ForEach(len(jobs), opts.Workers, func(i int) error {
		c, err := cqenum.PrepareWithOptions(db, jobs[i].q, opts.Reduce, build)
		if err != nil {
			return fmt.Errorf("mcucq: %s %s: %w", jobs[i].kind, jobs[i].q.Name, err)
		}
		jobs[i].prepared = c
		return nil
	}); err != nil {
		return nil, err
	}

	firsts := make([]RankedSet, m)
	for i, j := range disjuncts {
		firsts[i] = indexSet{j.prepared.Index}
	}
	out := &MCUCQ{u: u, firsts: firsts}
	for _, j := range jobs {
		out.indexes = append(out.indexes, j.prepared.Index)
	}

	// Phase 3 (serial): build bottom-up exactly as the serial construction —
	// U_{m-1} = S_{m-1}; U_ℓ = union(S_ℓ, U_{ℓ+1}).
	levelSets := make([][]signedSet, m)
	for l, lj := range levelJobs {
		for _, j := range lj {
			levelSets[l] = append(levelSets[l], signedSet{set: indexSet{j.prepared.Index}, sign: j.sign})
		}
	}
	out.assemble(levelSets, opts.UseLargest)

	if opts.Verify {
		if err := out.VerifyCompatibility(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func restCount(s SetAccess) int64 { return s.Count() }

// assemble builds the recursive union bottom-up — U_{m-1} = S_{m-1};
// U_ℓ = union(S_ℓ, U_{ℓ+1}) — from the per-level intersection sets. Shared
// by New and Restore so the assembled structure cannot drift between the
// build and the snapshot-restore path.
func (m *MCUCQ) assemble(levelSets [][]signedSet, useLargest bool) {
	n := len(m.firsts)
	var rest SetAccess = m.firsts[n-1]
	for l := n - 2; l >= 0; l-- {
		un := &union{first: m.firsts[l], rest: rest, useLargest: useLargest}
		for _, ss := range levelSets[l] {
			un.ts = append(un.ts, ss)
			un.inter += ss.sign * ss.set.Count()
		}
		un.count = un.first.Count() + restCount(rest) - un.inter
		m.levels = append(m.levels, un)
		rest = un
	}
	m.top = rest
	m.count = restCount(rest)
}

// RestoredIndexCount returns how many indexes a snapshot of an m-disjunct
// union holds: the m disjuncts plus every level's 2^(m-1-ℓ) - 1
// intersections.
func RestoredIndexCount(m int) int {
	n := m
	for l := 0; l <= m-2; l++ {
		n += (1 << (m - 1 - l)) - 1
	}
	return n
}

// Restore reassembles the Theorem 5.5 structure from indexes restored out
// of a snapshot, in the job order Indexes() reported at save time. The
// level layout and inclusion–exclusion signs are recomputed from m alone —
// they are a pure function of the disjunct count — and the per-level counts
// re-derive from the restored indexes' counts, so nothing else needs to be
// persisted.
func Restore(u *query.UCQ, indexes []*access.Index) (*MCUCQ, error) {
	m := len(u.Disjuncts)
	if m == 0 {
		return nil, errors.New("mcucq: restore of an empty union")
	}
	if want := RestoredIndexCount(m); len(indexes) != want {
		return nil, fmt.Errorf("mcucq: restore of %d-disjunct union needs %d indexes, got %d", m, want, len(indexes))
	}
	firsts := make([]RankedSet, m)
	for i := 0; i < m; i++ {
		firsts[i] = indexSet{indexes[i]}
	}
	out := &MCUCQ{u: u, firsts: firsts, indexes: indexes}
	levelSets := make([][]signedSet, m)
	pos := m
	for l := 0; l <= m-2; l++ {
		count := (1 << (m - 1 - l)) - 1
		for mask := 1; mask <= count; mask++ {
			// |I| = popcount(mask) members beyond ℓ; sign (-1)^{|I|+1}.
			sign := int64(-1)
			if bits.OnesCount(uint(mask))%2 == 1 {
				sign = 1
			}
			levelSets[l] = append(levelSets[l], signedSet{set: indexSet{indexes[pos]}, sign: sign})
			pos++
		}
	}
	out.assemble(levelSets, false)
	return out, nil
}

func intersectionName(u *query.UCQ, idx []int) string {
	name := u.Name + "∩["
	for i, d := range idx {
		if i > 0 {
			name += ","
		}
		name += u.Disjuncts[d].Name
	}
	return name + "]"
}

// Count returns |Q(D)| for the union, available right after preprocessing.
func (m *MCUCQ) Count() int64 { return m.count }

// Access returns the j-th answer of the union's enumeration order.
//
// The dispatch is flattened: instead of recursing down the union chain
// through two interface calls per level (rest.Access, rest.Test), the loop
// walks the level array directly — Algorithm 7's tail recursion is just a
// rewrite of j — and the membership probe against the rest of the union is
// a linear OR-scan over the remaining disjunct indexes. The recursive form
// survives on the union type itself; TestFlattenedDispatchMatchesRecursive
// pins the two against each other.
func (m *MCUCQ) Access(j int64) (relation.Tuple, error) {
	n := len(m.firsts)
	for l := 0; ; l++ {
		if l == n-1 {
			// Innermost level: the last disjunct serves the probe directly.
			return m.firsts[l].Access(j)
		}
		// levels is built bottom-up, so the union whose first disjunct is
		// S_l sits at levels[n-2-l].
		u := m.levels[n-2-l]
		if j < 0 || j >= u.count {
			return nil, access.ErrOutOfBounds
		}
		nA := u.first.Count()
		if j < nA {
			a, err := u.first.Access(j)
			if err != nil {
				return nil, err
			}
			if !m.testFrom(l+1, a) {
				return a, nil
			}
			// a ∈ A ∩ B: the j-th output is B's (k-1)-th element.
			j = u.computeK(j) - 1
			continue
		}
		// Phase 2: remaining elements of B after |A ∩ B| were consumed.
		j = j - nA + u.inter
	}
}

// Test reports whether t is an answer of the union: a flat OR-scan over the
// disjunct indexes (the recursive chain's Test unrolls to exactly this).
func (m *MCUCQ) Test(t relation.Tuple) bool { return m.testFrom(0, t) }

// testFrom reports whether t is an answer of S_l ∪ ... ∪ S_{m-1}.
func (m *MCUCQ) testFrom(l int, t relation.Tuple) bool {
	for ; l < len(m.firsts); l++ {
		if m.firsts[l].Test(t) {
			return true
		}
	}
	return false
}

// VerifyCompatibility checks, for every level ℓ and every intersection set
// T_{ℓ,I}, that T's enumeration order is a subsequence of S_ℓ's order (every
// element of T is in S_ℓ with strictly increasing ranks). It costs a full
// enumeration of every intersection.
func (m *MCUCQ) VerifyCompatibility() error {
	for li, un := range m.levels {
		for ti, t := range un.ts {
			prev := int64(-1)
			for r := int64(0); r < t.set.Count(); r++ {
				c, err := t.set.Access(r)
				if err != nil {
					return err
				}
				rank, ok := un.first.InvAcc(c)
				if !ok {
					return fmt.Errorf("%w: level %d T#%d element %v not in its first disjunct",
						ErrIncompatible, li, ti, c)
				}
				if rank <= prev {
					return fmt.Errorf("%w: level %d T#%d rank regression at %d (%d ≤ %d)",
						ErrIncompatible, li, ti, r, rank, prev)
				}
				prev = rank
			}
		}
	}
	return nil
}

// Permutation enumerates the union's answers in uniformly random order with
// O(2^m log²) delay (REnum(mcUCQ)).
type Permutation struct {
	m    *MCUCQ
	shuf *shuffle.Shuffler
}

// Permute starts a fresh uniformly random permutation.
func (m *MCUCQ) Permute(rng *rand.Rand) *Permutation {
	return &Permutation{m: m, shuf: shuffle.New(m.count, rng)}
}

// Next returns the next answer; ok is false after all answers were emitted.
func (p *Permutation) Next() (relation.Tuple, bool) {
	j, ok := p.shuf.Next()
	if !ok {
		return nil, false
	}
	t, err := p.m.Access(j)
	if err != nil {
		return nil, false
	}
	return t, true
}

// Remaining returns the number of answers not yet emitted.
func (p *Permutation) Remaining() int64 { return p.shuf.Remaining() }

// NextN returns the next k answers of the permutation (fewer at the end).
// Random positions are drawn serially from the shuffler — the same draws as
// k calls to Next — and the union Access probes fan out over up to `workers`
// goroutines (workers <= 0 means parallel.Workers()), which amortizes the
// O(2^m log²) per-probe cost across cores.
func (p *Permutation) NextN(k int64, workers int) []relation.Tuple {
	out, _ := p.NextNContext(context.Background(), k, workers)
	return out
}

// NextNContext is NextN honoring cancellation between probe chunks. The
// positions are drawn serially up front (identical rng consumption to
// NextN); cancellation mid-probe returns ctx.Err() with the drawn positions
// consumed and their answers discarded — the permutation stays valid and
// simply skips the cancelled batch.
func (p *Permutation) NextNContext(ctx context.Context, k int64, workers int) ([]relation.Tuple, error) {
	if k < 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Size by what is actually left: k may be a "drain everything" value.
	if r := p.shuf.Remaining(); k > r {
		k = r
	}
	js := make([]int64, 0, k)
	for int64(len(js)) < k {
		j, ok := p.shuf.Next()
		if !ok {
			break
		}
		js = append(js, j)
	}
	out := make([]relation.Tuple, len(js))
	if err := parallel.ForEachChunkCtx(ctx, len(js), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			t, err := p.m.Access(js[i])
			if err != nil {
				return err
			}
			out[i] = t
		}
		return nil
	}); err != nil {
		// Only reachable through cancellation: the shuffler never emits an
		// index at or above Count().
		return nil, err
	}
	return out, nil
}
