package mcucq

import (
	"fmt"
	"testing"

	"repro/internal/access"
	"repro/internal/relation"
)

// TestFlattenedDispatchMatchesRecursive pins MCUCQ.Access/Test (the
// flattened level-array walk) against the recursive union chain they
// replaced, position by position, on 2-, 3- and 4-way unions with
// overlapping disjuncts.
func TestFlattenedDispatchMatchesRecursive(t *testing.T) {
	cases := []struct {
		name  string
		build func(seed int64) (*MCUCQ, error)
	}{
		{"two-way", func(seed int64) (*MCUCQ, error) {
			return New(alignedDB(seed, 60), alignedUCQ2(), Options{Verify: true})
		}},
		{"three-way", func(seed int64) (*MCUCQ, error) {
			return New(alignedDB(seed+50, 50), alignedUCQ3(), Options{Verify: true})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				m, err := tc.build(seed)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := m.Count(), m.top.Count(); got != want {
					t.Fatalf("seed %d: Count %d, recursive %d", seed, got, want)
				}
				for j := int64(-2); j < m.Count()+2; j++ {
					flat, flatErr := m.Access(j)
					rec, recErr := m.top.Access(j)
					if (flatErr == nil) != (recErr == nil) {
						t.Fatalf("seed %d Access(%d): flat err %v, recursive err %v", seed, j, flatErr, recErr)
					}
					if flatErr != nil {
						if flatErr != access.ErrOutOfBounds || recErr != access.ErrOutOfBounds {
							t.Fatalf("seed %d Access(%d): errors %v / %v", seed, j, flatErr, recErr)
						}
						continue
					}
					if flat.Key() != rec.Key() {
						t.Fatalf("seed %d Access(%d): flat %v, recursive %v", seed, j, flat, rec)
					}
					if !m.Test(flat) || !m.top.Test(flat) {
						t.Fatalf("seed %d: answer %v fails membership", seed, flat)
					}
				}
				// Non-answers must be rejected by both dispatches.
				for _, probe := range []relation.Tuple{
					{relation.Value(999), relation.Value(999), relation.Value(999)},
					{relation.Value(0), relation.Value(0), relation.Value(7)},
				} {
					if got, want := m.Test(probe), m.top.Test(probe); got != want {
						t.Fatalf("seed %d Test(%v): flat %v, recursive %v", seed, probe, got, want)
					}
				}
			}
		})
	}
}

// TestFlattenedDispatchSingleDisjunct covers the degenerate union (m = 1,
// no levels): the flat walk must delegate straight to the only disjunct.
func TestFlattenedDispatchSingleDisjunct(t *testing.T) {
	db := alignedDB(3, 40)
	u := alignedUCQ2()
	single := *u
	single.Disjuncts = u.Disjuncts[:1]
	m, err := New(db, &single, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() == 0 {
		t.Fatal("fixture disjunct is empty")
	}
	for j := int64(0); j < m.Count(); j++ {
		flat, err := m.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := m.top.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if flat.Key() != rec.Key() {
			t.Fatalf("Access(%d): %v vs %v", j, flat, rec)
		}
	}
	if _, err := m.Access(m.Count()); err != access.ErrOutOfBounds {
		t.Fatalf("out-of-range error = %v", err)
	}
}

// BenchmarkUnionAccess compares the flattened and recursive dispatches on a
// 3-way union (run with -bench to see the delta; correctness is pinned by
// the tests above).
func BenchmarkUnionAccess(b *testing.B) {
	m, err := New(alignedDB(1, 2000), alignedUCQ3(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	n := m.Count()
	for _, flat := range []bool{true, false} {
		b.Run(fmt.Sprintf("flat=%v", flat), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := int64(i) % n
				var err error
				if flat {
					_, err = m.Access(j)
				} else {
					_, err = m.top.Access(j)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
