package cqenum

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
)

func testDB(seed int64, n int) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	for i := 0; i < n; i++ {
		r.MustInsert(relation.Value(rng.Intn(10)), relation.Value(rng.Intn(5)))
		s.MustInsert(relation.Value(rng.Intn(5)), relation.Value(rng.Intn(10)))
	}
	return db
}

func chainQ() *query.CQ {
	return query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
}

func TestPrepareRejectsNonFreeConnex(t *testing.T) {
	db := testDB(1, 20)
	q := query.MustCQ("bad", []string{"a", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	if _, err := Prepare(db, q, reduce.Options{}); err == nil {
		t.Fatal("non-free-connex accepted")
	}
}

func TestEnumeratorCompleteAndOrdered(t *testing.T) {
	db := testDB(2, 40)
	q := chainQ()
	c, err := Prepare(db, q, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.Evaluate(db, q)
	if c.Count() != int64(len(want)) {
		t.Fatalf("Count = %d, want %d", c.Count(), len(want))
	}
	e := c.Enumerate()
	var got []relation.Tuple
	for {
		t, ok := e.Next()
		if !ok {
			break
		}
		got = append(got, t)
	}
	if !naive.SameAnswerSet(got, want) {
		t.Fatal("enumerator missed answers")
	}
	// Deterministic: a second enumerator yields the same order.
	e2 := c.Enumerate()
	for i := range got {
		u, ok := e2.Next()
		if !ok || !u.Equal(got[i]) {
			t.Fatal("enumeration order not deterministic")
		}
	}
}

func TestRandomPermutationIsPermutation(t *testing.T) {
	db := testDB(3, 50)
	q := chainQ()
	c, err := Prepare(db, q, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.Evaluate(db, q)
	p := c.Permute(rand.New(rand.NewSource(4)))
	seen := make(map[string]bool)
	var got []relation.Tuple
	if p.Remaining() != int64(len(want)) {
		t.Fatal("Remaining wrong at start")
	}
	for {
		tup, ok := p.Next()
		if !ok {
			break
		}
		k := tup.Key()
		if seen[k] {
			t.Fatalf("duplicate answer %v", tup)
		}
		seen[k] = true
		got = append(got, tup)
	}
	if !naive.SameAnswerSet(got, want) {
		t.Fatal("permutation missed answers")
	}
	if _, ok := p.Next(); ok {
		t.Fatal("Next after exhaustion")
	}
}

// TestRandomPermutationUniform checks that the full output order is uniform
// over permutations on a tiny instance (3 answers → 6 orders).
func TestRandomPermutationUniform(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	r.MustInsert(1, 1)
	r.MustInsert(2, 1)
	r.MustInsert(3, 2)
	s.MustInsert(1, 7)
	s.MustInsert(2, 8)
	// Answers: (1,1,7), (2,1,7), (3,2,8) — exactly 3.
	c, err := Prepare(db, chainQ(), reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 3 {
		t.Fatalf("Count = %d, want 3", c.Count())
	}
	rng := rand.New(rand.NewSource(5))
	const trials = 30000
	counts := make(map[string]int)
	for i := 0; i < trials; i++ {
		p := c.Permute(rng)
		sig := ""
		for {
			tup, ok := p.Next()
			if !ok {
				break
			}
			sig += tup.Key()
		}
		counts[sig]++
	}
	if len(counts) != 6 {
		t.Fatalf("observed %d orders, want 6", len(counts))
	}
	expected := float64(trials) / 6
	for sig, cnt := range counts {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("order %x count %d, expected ~%.0f", sig, cnt, expected)
		}
	}
}

// TestFirstAnswerUniform: the first emitted answer must be uniform over the
// answer set (the property downstream "representative prefix" applications
// rely on).
func TestFirstAnswerUniform(t *testing.T) {
	db := testDB(6, 30)
	c, err := Prepare(db, chainQ(), reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := int(c.Count())
	if n < 5 {
		t.Skip("instance too small")
	}
	rng := rand.New(rand.NewSource(7))
	trials := 300 * n
	counts := make(map[string]int)
	for i := 0; i < trials; i++ {
		p := c.Permute(rng)
		tup, _ := p.Next()
		counts[tup.Key()]++
	}
	expected := float64(trials) / float64(n)
	for _, cnt := range counts {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("first answer count %d, expected ~%.0f", cnt, expected)
		}
	}
}

func TestDeletableSet(t *testing.T) {
	db := testDB(8, 40)
	c, err := Prepare(db, chainQ(), reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	set := c.NewDeletableSet()
	rng := rand.New(rand.NewSource(9))
	total := set.Count()
	if total != c.Count() {
		t.Fatal("initial count mismatch")
	}
	// Drain by sample+delete; every sampled answer must test true before
	// deletion and false after.
	drained := int64(0)
	for set.Count() > 0 {
		tup, ok := set.Sample(rng)
		if !ok {
			t.Fatal("sample failed")
		}
		if !set.Test(tup) {
			t.Fatalf("sampled tuple fails Test: %v", tup)
		}
		if !set.Delete(tup) {
			t.Fatal("delete failed")
		}
		if set.Test(tup) {
			t.Fatal("deleted tuple still tests true")
		}
		if set.Delete(tup) {
			t.Fatal("double delete succeeded")
		}
		drained++
	}
	if drained != total {
		t.Fatalf("drained %d, want %d", drained, total)
	}
	// Non-answers.
	if set.Test(relation.Tuple{99, 99, 99}) {
		t.Fatal("non-answer tests true")
	}
	if set.Delete(relation.Tuple{99, 99, 99}) {
		t.Fatal("non-answer deleted")
	}
	if _, ok := set.Sample(rng); ok {
		t.Fatal("sample from empty set")
	}
}

func TestPermutationEmptyResult(t *testing.T) {
	db := relation.NewDatabase()
	db.MustCreate("R", "a", "b")
	db.MustCreate("S", "b", "c")
	c, err := Prepare(db, chainQ(), reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Permute(rand.New(rand.NewSource(1)))
	if _, ok := p.Next(); ok {
		t.Fatal("empty permutation emitted")
	}
	e := c.Enumerate()
	if _, ok := e.Next(); ok {
		t.Fatal("empty enumeration emitted")
	}
}
