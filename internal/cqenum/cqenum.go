// Package cqenum assembles the per-CQ machinery of Section 4:
//
//   - Prepare: linear preprocessing — Proposition 4.2 reduction followed by
//     the Algorithm 2 index build;
//   - Enumerator: deterministic enumeration in index order (Fact 3.5);
//   - RandomPermutation: REnum(CQ) — Theorem 3.7's Fisher–Yates shuffle over
//     random access, giving a uniformly random order with O(log) delay;
//   - DeletableSet: the Lemma 5.3 wrapper exposing Count / Sample / Test /
//     Delete over a CQ's answer set, consumed by Algorithm 5 (REnum(UCQ)).
//
// # Concurrency contract
//
// A prepared CQ is immutable: Count, Index probes and FullJoin inspection
// are safe from any number of goroutines. The stateful cursors handed out by
// Enumerate, Permute and NewDeletableSet are each single-consumer — share
// the CQ, not the cursor. RandomPermutation.NextN amortizes cursor state
// serially and fans the index probes out across goroutines, so one consumer
// still saturates multiple cores.
package cqenum

import (
	"context"
	"math/rand"

	"repro/internal/access"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/shuffle"
)

// CQ is a prepared conjunctive query: the original query, the reduced full
// join it was compiled to, and the built random-access index.
type CQ struct {
	Query    *query.CQ
	FullJoin *reduce.FullJoin
	Index    *access.Index
}

// Prepare runs the Proposition 4.2 reduction and builds the Theorem 4.3
// index. It fails for cyclic or non-free-connex queries.
func Prepare(db *relation.Database, q *query.CQ, opts reduce.Options) (*CQ, error) {
	return PrepareWithOptions(db, q, opts, access.BuildOptions{})
}

// PrepareWithOptions is Prepare with explicit control over the index build's
// parallelism (worker count and serial threshold) — the hook the experiment
// harness and CLIs use to pin the builder's fan-out.
func PrepareWithOptions(db *relation.Database, q *query.CQ, opts reduce.Options, build access.BuildOptions) (*CQ, error) {
	fj, err := reduce.BuildFullJoin(db, q, opts)
	if err != nil {
		return nil, err
	}
	idx, err := access.NewWithOptions(fj, build)
	if err != nil {
		return nil, err
	}
	return &CQ{Query: q, FullJoin: fj, Index: idx}, nil
}

// Restore assembles a prepared CQ around an index restored from a snapshot:
// no reduction runs and FullJoin is nil — the restored form serves every
// probe (the index is self-contained) but cannot Explain its plan, which the
// capability surface reports.
func Restore(q *query.CQ, idx *access.Index) *CQ {
	return &CQ{Query: q, Index: idx}
}

// Count returns |Q(D)|.
func (c *CQ) Count() int64 { return c.Index.Count() }

// Enumerator yields the answers in the index's (deterministic) enumeration
// order with logarithmic delay.
type Enumerator struct {
	idx  *access.Index
	next int64
}

// Enumerate returns a deterministic enumerator over the prepared query.
func (c *CQ) Enumerate() *Enumerator {
	return &Enumerator{idx: c.Index}
}

// Next returns the next answer; ok is false at end of enumeration.
func (e *Enumerator) Next() (relation.Tuple, bool) {
	t, err := e.idx.Access(e.next)
	if err != nil {
		return nil, false
	}
	e.next++
	return t, true
}

// RandomPermutation enumerates the answers exactly once each, in a uniformly
// random order (REnum(CQ)): a lazy Fisher–Yates shuffle of the answer indexes
// drives the random-access routine.
type RandomPermutation struct {
	idx  *access.Index
	shuf *shuffle.Shuffler
}

// Permute starts a fresh random permutation of the answers.
func (c *CQ) Permute(rng *rand.Rand) *RandomPermutation {
	return &RandomPermutation{idx: c.Index, shuf: shuffle.New(c.Index.Count(), rng)}
}

// Next returns the next answer of the random permutation; ok is false once
// all answers have been emitted. Each call costs O(log |D|).
func (p *RandomPermutation) Next() (relation.Tuple, bool) {
	j, ok := p.shuf.Next()
	if !ok {
		return nil, false
	}
	t, err := p.idx.Access(j)
	if err != nil {
		// Unreachable: the shuffler only emits indexes below Count().
		return nil, false
	}
	return t, true
}

// Remaining returns how many answers have not been emitted yet.
func (p *RandomPermutation) Remaining() int64 { return p.shuf.Remaining() }

// NextN returns the next k answers of the permutation (fewer if the
// permutation ends first). The k random positions are drawn serially from
// the shuffler — identical draws, in the same order, as k calls to Next —
// and the k index probes then run concurrently on up to `workers`
// goroutines (workers <= 0 means parallel.Workers()). The emitted sequence
// is therefore byte-identical to the serial one for the same rng.
func (p *RandomPermutation) NextN(k int64, workers int) []relation.Tuple {
	out, _ := p.NextNContext(context.Background(), k, workers)
	return out
}

// NextNContext is NextN honoring cancellation between probe chunks. The k
// random positions are still drawn serially up front (so the rng consumption
// is identical to NextN's); if ctx is cancelled while the batched probes
// run, the call returns ctx.Err() and the drawn positions are consumed but
// their answers discarded — the permutation cursor stays valid, it simply
// skips the cancelled batch, which is the right semantics for an abandoned
// network request.
func (p *RandomPermutation) NextNContext(ctx context.Context, k int64, workers int) ([]relation.Tuple, error) {
	if k < 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Callers may pass "drain everything" values of k; size by what is
	// actually left so the allocation cannot explode.
	if r := p.shuf.Remaining(); k > r {
		k = r
	}
	js := make([]int64, 0, k)
	for int64(len(js)) < k {
		j, ok := p.shuf.Next()
		if !ok {
			break
		}
		js = append(js, j)
	}
	return p.idx.AccessBatchContext(ctx, js, workers)
}

// DeletableSet implements Lemma 5.3: given counting, random access and
// inverted access, the answer set supports sampling, membership testing,
// deletion and counting, each in the same time bound. It is the per-CQ set
// handed to Algorithm 5.
type DeletableSet struct {
	idx *access.Index
	del *shuffle.DeletionSet
}

// NewDeletableSet wraps the prepared query's answer set.
func (c *CQ) NewDeletableSet() *DeletableSet {
	return &DeletableSet{idx: c.Index, del: shuffle.NewDeletionSet(c.Index.Count())}
}

// Count returns the number of remaining (non-deleted) answers.
func (s *DeletableSet) Count() int64 { return s.del.Count() }

// Sample returns a uniformly random remaining answer without removing it;
// ok is false when the set is empty.
func (s *DeletableSet) Sample(rng *rand.Rand) (relation.Tuple, bool) {
	j, ok := s.del.Sample(rng)
	if !ok {
		return nil, false
	}
	t, err := s.idx.Access(j)
	if err != nil {
		return nil, false
	}
	return t, true
}

// Test reports whether t is a remaining answer of this CQ.
func (s *DeletableSet) Test(t relation.Tuple) bool {
	j, ok := s.idx.InvertedAccess(t)
	if !ok {
		return false
	}
	return !s.del.Deleted(j)
}

// Delete removes answer t from the set, reporting whether it was present.
func (s *DeletableSet) Delete(t relation.Tuple) bool {
	j, ok := s.idx.InvertedAccess(t)
	if !ok {
		return false
	}
	return s.del.Delete(j)
}
