// Package shuffle implements the paper's constant-delay random-permutation
// machinery:
//
//   - Shuffler: Algorithm 1 — a lazy Fisher–Yates shuffle emitting a uniform
//     permutation of 0..n-1 with O(1) preprocessing and O(1) delay, using a
//     lookup table to simulate the uninitialized array;
//   - DeletionSet: the Section 5.1 structure — the same lazy array plus a
//     reverse index b, supporting Sample / Delete / Count over the index set
//     {0..n-1}, as required by Algorithm 5 (REnum(UCQ)) via Lemma 5.3.
package shuffle

import "math/rand"

// Shuffler emits a uniformly random permutation of 0..n-1, one element per
// Next call (Algorithm 1). The zero value is not usable; call New.
type Shuffler struct {
	n   int64
	i   int64
	a   map[int64]int64 // lazy array: absent key k means a[k] = k
	rng *rand.Rand
}

// New returns a Shuffler over 0..n-1 using the given source of randomness.
// Preprocessing is O(1): the array is simulated lazily.
func New(n int64, rng *rand.Rand) *Shuffler {
	return &Shuffler{n: n, a: make(map[int64]int64), rng: rng}
}

// Remaining returns how many elements have not been emitted yet.
func (s *Shuffler) Remaining() int64 { return s.n - s.i }

// Next returns the next element of the permutation; ok is false once all n
// elements have been emitted. Each call is O(1) (two lookup-table accesses).
func (s *Shuffler) Next() (int64, bool) {
	if s.i >= s.n {
		return 0, false
	}
	i := s.i
	j := i + s.rng.Int63n(s.n-i)
	ai, ok := s.a[i]
	if !ok {
		ai = i
	}
	aj, ok := s.a[j]
	if !ok {
		aj = j
	}
	// Swap a[i] and a[j]; output the value now at a[i].
	s.a[i] = aj
	s.a[j] = ai
	s.i++
	return aj, true
}

// DeletionSet maintains the set {0..n-1} minus deletions, supporting uniform
// sampling without removal, deletion by value, and counting — all O(1). It is
// the structure described after Lemma 5.2: a[0..i-1] holds deleted values,
// a[i..n-1] the remaining ones, with b the inverse of a.
type DeletionSet struct {
	n int64
	i int64 // number of deleted elements
	a map[int64]int64
	b map[int64]int64
}

// NewDeletionSet returns a DeletionSet over 0..n-1.
func NewDeletionSet(n int64) *DeletionSet {
	return &DeletionSet{n: n, a: make(map[int64]int64), b: make(map[int64]int64)}
}

func (d *DeletionSet) av(k int64) int64 {
	if v, ok := d.a[k]; ok {
		return v
	}
	return k
}

func (d *DeletionSet) bv(m int64) int64 {
	if v, ok := d.b[m]; ok {
		return v
	}
	return m
}

// Count returns the number of remaining (non-deleted) elements.
func (d *DeletionSet) Count() int64 { return d.n - d.i }

// Sample returns a uniformly random remaining element; ok is false when the
// set is empty. The element is NOT removed.
func (d *DeletionSet) Sample(rng *rand.Rand) (int64, bool) {
	if d.i >= d.n {
		return 0, false
	}
	k := d.i + rng.Int63n(d.n-d.i)
	return d.av(k), true
}

// Deleted reports whether value m has been deleted.
func (d *DeletionSet) Deleted(m int64) bool {
	if m < 0 || m >= d.n {
		return true
	}
	return d.bv(m) < d.i
}

// Delete removes value m from the set. It reports whether m was present
// (not yet deleted and in range).
func (d *DeletionSet) Delete(m int64) bool {
	if m < 0 || m >= d.n {
		return false
	}
	k := d.bv(m) // slot currently holding m
	if k < d.i {
		return false // already deleted
	}
	// Swap slots k and i; advance i.
	vi := d.av(d.i)
	d.a[k] = vi
	d.b[vi] = k
	d.a[d.i] = m
	d.b[m] = d.i
	d.i++
	return true
}
