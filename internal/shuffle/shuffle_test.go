package shuffle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShufflerIsPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int64(nRaw%50) + 1
		s := New(n, rand.New(rand.NewSource(seed)))
		seen := make(map[int64]bool, n)
		for k := int64(0); k < n; k++ {
			v, ok := s.Next()
			if !ok || v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		_, ok := s.Next()
		return !ok && int64(len(seen)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflerRemaining(t *testing.T) {
	s := New(3, rand.New(rand.NewSource(1)))
	if s.Remaining() != 3 {
		t.Fatal("Remaining before start")
	}
	s.Next()
	if s.Remaining() != 2 {
		t.Fatal("Remaining after one")
	}
}

func TestShufflerEmpty(t *testing.T) {
	s := New(0, rand.New(rand.NewSource(1)))
	if _, ok := s.Next(); ok {
		t.Fatal("empty shuffler emitted")
	}
}

// TestShufflerUniform checks that all n! permutations appear with roughly
// equal frequency for small n (chi-square over permutation identities).
func TestShufflerUniform(t *testing.T) {
	const n = 4
	const fact = 24
	const trials = 24000
	rng := rand.New(rand.NewSource(42))
	counts := make(map[[n]int64]int)
	for i := 0; i < trials; i++ {
		s := New(n, rng)
		var p [n]int64
		for k := 0; k < n; k++ {
			v, _ := s.Next()
			p[k] = v
		}
		counts[p]++
	}
	if len(counts) != fact {
		t.Fatalf("observed %d distinct permutations, want %d", len(counts), fact)
	}
	expected := float64(trials) / fact
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	df := float64(fact - 1)
	if limit := df + 6*math.Sqrt(2*df); stat > limit {
		t.Fatalf("chi-square %.1f exceeds %.1f: permutation not uniform", stat, limit)
	}
}

// TestShufflerFirstElementUniform checks the marginal distribution of the
// first emitted element.
func TestShufflerFirstElementUniform(t *testing.T) {
	const n = 10
	const trials = 20000
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		s := New(n, rng)
		v, _ := s.Next()
		counts[v]++
	}
	expected := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("first element %d appeared %d times, expected ~%.0f", v, c, expected)
		}
	}
}

func TestDeletionSetBasics(t *testing.T) {
	d := NewDeletionSet(5)
	if d.Count() != 5 {
		t.Fatal("initial count")
	}
	if !d.Delete(2) {
		t.Fatal("delete failed")
	}
	if d.Delete(2) {
		t.Fatal("double delete succeeded")
	}
	if !d.Deleted(2) || d.Deleted(3) {
		t.Fatal("Deleted wrong")
	}
	if d.Count() != 4 {
		t.Fatal("count after delete")
	}
	if d.Delete(-1) || d.Delete(5) {
		t.Fatal("out-of-range delete succeeded")
	}
	if !d.Deleted(-1) || !d.Deleted(99) {
		t.Fatal("out-of-range must read as deleted")
	}
}

func TestDeletionSetSampleNeverReturnsDeleted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDeletionSet(20)
	deleted := map[int64]bool{3: true, 7: true, 19: true, 0: true}
	for m := range deleted {
		if !d.Delete(m) {
			t.Fatal("delete failed")
		}
	}
	for i := 0; i < 2000; i++ {
		v, ok := d.Sample(rng)
		if !ok {
			t.Fatal("sample failed")
		}
		if deleted[v] {
			t.Fatalf("sampled deleted value %d", v)
		}
	}
}

func TestDeletionSetDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDeletionSet(30)
	seen := make(map[int64]bool)
	for d.Count() > 0 {
		v, ok := d.Sample(rng)
		if !ok {
			t.Fatal("sample failed with nonzero count")
		}
		if seen[v] {
			continue // sampling without removal can repeat
		}
		seen[v] = true
		if !d.Delete(v) {
			t.Fatal("delete of sampled value failed")
		}
	}
	if int64(len(seen)) != 30 {
		t.Fatalf("drained %d values, want 30", len(seen))
	}
	if _, ok := d.Sample(rng); ok {
		t.Fatal("sample from empty set succeeded")
	}
}

// TestDeletionSetSampleUniform: the sampler must be uniform over remaining
// elements after some deletions.
func TestDeletionSetSampleUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := NewDeletionSet(10)
	d.Delete(1)
	d.Delete(4)
	d.Delete(9)
	const trials = 35000
	counts := make(map[int64]int)
	for i := 0; i < trials; i++ {
		v, _ := d.Sample(rng)
		counts[v]++
	}
	if len(counts) != 7 {
		t.Fatalf("sampled %d distinct values, want 7", len(counts))
	}
	expected := float64(trials) / 7
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("value %d sampled %d times, expected ~%.0f", v, c, expected)
		}
	}
}

// TestDeletionSetMatchesNaive cross-checks against a naive map-based set
// under a random operation sequence.
func TestDeletionSetMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 40
	d := NewDeletionSet(n)
	naive := make(map[int64]bool, n)
	for m := int64(0); m < n; m++ {
		naive[m] = true
	}
	for step := 0; step < 500; step++ {
		if rng.Intn(2) == 0 {
			m := int64(rng.Intn(n))
			want := naive[m]
			got := d.Delete(m)
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, m, got, want)
			}
			delete(naive, m)
		} else {
			if int64(len(naive)) != d.Count() {
				t.Fatalf("step %d: Count = %d, want %d", step, d.Count(), len(naive))
			}
			if v, ok := d.Sample(rng); ok {
				if !naive[v] {
					t.Fatalf("step %d: sampled deleted %d", step, v)
				}
			} else if len(naive) != 0 {
				t.Fatalf("step %d: Sample failed with %d remaining", step, len(naive))
			}
		}
	}
}
