package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkAccess/Q0-4         	 8503collector noise
BenchmarkAccess/Q0-4         	    8503	    138.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkAccessBatch-4       	       1	  202435 ns/op	  131160 B/op	       3 allocs/op
BenchmarkParallelBuild/Serial-4 	       1	40500000 ns/op	27000000 B/op	  618000 allocs/op
--- BENCH: BenchmarkSomething
    some_test.go:10: noise
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro" {
		t.Fatalf("header = %+v", doc)
	}
	if doc.CPU != "AMD EPYC 7B13" {
		t.Fatalf("cpu = %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d results, want 3 (malformed lines skipped)", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkAccess/Q0-4" || b.Runs != 8503 {
		t.Fatalf("b0 = %+v", b)
	}
	if b.Metrics["ns/op"] != 138.2 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("b0 metrics = %v", b.Metrics)
	}
	if doc.Benchmarks[1].Metrics["B/op"] != 131160 {
		t.Fatalf("b1 metrics = %v", doc.Benchmarks[1].Metrics)
	}
}

func TestParseEmpty(t *testing.T) {
	doc, err := Parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("got %d results from noise", len(doc.Benchmarks))
	}
	// Benchmarks must marshal as [], not null, for downstream consumers.
	if doc.Benchmarks == nil {
		t.Fatal("Benchmarks is nil")
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkAccess/Q0-4":      "BenchmarkAccess/Q0",
		"BenchmarkAccess/Q0":        "BenchmarkAccess/Q0",
		"BenchmarkServing/batch16":  "BenchmarkServing/batch16",
		"BenchmarkColdStart-128":    "BenchmarkColdStart",
		"BenchmarkX/flat=true-4":    "BenchmarkX/flat=true",
		"Benchmark-":                "Benchmark-",
		"-4":                        "-4",
		"BenchmarkServing/p99-tail": "BenchmarkServing/p99-tail",
	}
	for in, want := range cases {
		if got := BaseName(in); got != want {
			t.Errorf("BaseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func docWith(cpu string, results ...Result) *Doc {
	return &Doc{CPU: cpu, Benchmarks: results}
}

func res(name string, ns, allocs float64) Result {
	return Result{Name: name, Runs: 1, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestDiffGates(t *testing.T) {
	base := docWith("cpuA",
		res("BenchmarkA-4", 100, 0),
		res("BenchmarkB-4", 100, 10),
		res("BenchmarkC-4", 100, 0),
	)

	t.Run("clean", func(t *testing.T) {
		fresh := docWith("cpuA", res("BenchmarkA-8", 110, 0), res("BenchmarkB-8", 95, 11), res("BenchmarkC-8", 100, 0))
		if fs := Diff(base, fresh, DiffOptions{}); len(fs) != 0 {
			t.Fatalf("findings = %+v", fs)
		}
	})

	t.Run("pinned zero alloc regression fails", func(t *testing.T) {
		fresh := docWith("cpuA", res("BenchmarkA-8", 100, 1), res("BenchmarkB-8", 100, 10), res("BenchmarkC-8", 100, 0))
		fs := Diff(base, fresh, DiffOptions{})
		if len(fs) != 1 || !fs[0].Fail || fs[0].Name != "BenchmarkA" {
			t.Fatalf("findings = %+v", fs)
		}
	})

	t.Run("nonzero allocs tolerate the fraction", func(t *testing.T) {
		fresh := docWith("cpuA", res("BenchmarkA-8", 100, 0), res("BenchmarkB-8", 100, 11.9), res("BenchmarkC-8", 100, 0))
		if fs := Diff(base, fresh, DiffOptions{}); len(fs) != 0 {
			t.Fatalf("findings = %+v", fs)
		}
		fresh.Benchmarks[1].Metrics["allocs/op"] = 13
		fs := Diff(base, fresh, DiffOptions{})
		if len(fs) != 1 || !fs[0].Fail {
			t.Fatalf("findings = %+v", fs)
		}
	})

	t.Run("ns regression fails past threshold", func(t *testing.T) {
		fresh := docWith("cpuA", res("BenchmarkA-8", 121, 0), res("BenchmarkB-8", 100, 10), res("BenchmarkC-8", 100, 0))
		fs := Diff(base, fresh, DiffOptions{})
		if len(fs) != 1 || !fs[0].Fail || !strings.Contains(fs[0].Msg, "ns/op") {
			t.Fatalf("findings = %+v", fs)
		}
		// A looser threshold passes the same pair.
		if fs := Diff(base, fresh, DiffOptions{MaxNsRegress: 0.25}); len(fs) != 0 {
			t.Fatalf("findings = %+v", fs)
		}
	})

	t.Run("cpu mismatch skips ns but still gates allocs", func(t *testing.T) {
		fresh := docWith("cpuB", res("BenchmarkA-8", 500, 1), res("BenchmarkB-8", 500, 10), res("BenchmarkC-8", 500, 0))
		fs := Diff(base, fresh, DiffOptions{SkipNsOnCPUMismatch: true})
		var fails, infos int
		for _, f := range fs {
			if f.Fail {
				fails++
				if f.Name != "BenchmarkA" {
					t.Fatalf("unexpected fail %+v", f)
				}
			} else {
				infos++
			}
		}
		if fails != 1 || infos != 1 {
			t.Fatalf("findings = %+v", fs)
		}
		// Fails sort before informational findings.
		if !fs[0].Fail {
			t.Fatalf("ordering = %+v", fs)
		}
	})

	t.Run("missing benchmark is informational", func(t *testing.T) {
		fresh := docWith("cpuA", res("BenchmarkA-8", 100, 0), res("BenchmarkB-8", 100, 10))
		fs := Diff(base, fresh, DiffOptions{})
		if len(fs) != 1 || fs[0].Fail || fs[0].Name != "BenchmarkC" {
			t.Fatalf("findings = %+v", fs)
		}
	})
}
