// Package benchfmt is the machine-readable benchmark document shared by
// cmd/benchjson (text → JSON conversion, baseline diffing) and cmd/renumload
// (which emits serving-tier results in the same shape): one Doc per run,
// one Result per benchmark, metrics keyed by unit exactly as `go test
// -bench` prints them ("ns/op", "B/op", "allocs/op", plus any custom
// ReportMetric unit). The committed BENCH_*.json baselines at the repo root
// are Docs.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Parse scans go-test bench output. Unrecognized lines (test framework
// chatter, PASS/ok trailers) are skipped, not errors: bench output is
// routinely interleaved with other noise.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResult(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, res)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult decodes "BenchmarkName-P  N  v1 unit1  v2 unit2 ...".
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Runs: runs, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}

// BaseName strips the -P GOMAXPROCS suffix go test appends on multi-core
// machines (BenchmarkAccess/Q0-4 → BenchmarkAccess/Q0), so results from
// runners with different core counts compare under one name.
func BaseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	tail := name[i+1:]
	if tail == "" {
		return name
	}
	for _, c := range tail {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// DiffOptions tunes Diff's regression thresholds.
type DiffOptions struct {
	// MaxNsRegress fails a benchmark whose fresh ns/op exceeds the baseline
	// by more than this fraction (0.20 = +20%). <= 0 means 0.20.
	MaxNsRegress float64
	// SkipNsOnCPUMismatch suppresses the ns/op comparison when the two docs
	// record different cpu strings: wall-clock numbers from different
	// hardware are not comparable, while allocs/op is hardware-independent
	// and is always compared.
	SkipNsOnCPUMismatch bool
}

// Finding is one regression (or informational note) from Diff.
type Finding struct {
	Name string
	Msg  string
	// Fail marks a gating regression; non-fail findings are informational
	// (benchmark missing from the fresh run, ns comparison skipped).
	Fail bool
}

// Diff compares a fresh run against a committed baseline, benchmark by
// benchmark (matched on BaseName, so GOMAXPROCS suffixes do not defeat the
// match). It gates on:
//
//   - allocs/op: a benchmark the baseline pins at 0 allocs/op must stay at
//     0 — any alloc creeping into a pinned-zero probe path fails. A nonzero
//     baseline fails only past the MaxNsRegress fraction (allocation counts
//     are deterministic, but harness-measured allocs/req carry scheduler
//     noise).
//   - ns/op: fresh > baseline*(1+MaxNsRegress) fails, unless the cpu
//     strings differ and SkipNsOnCPUMismatch is set.
//
// Benchmarks present only in the baseline are informational findings (a
// renamed benchmark must be re-baselined deliberately, not silently
// dropped); benchmarks present only in the fresh run are ignored.
func Diff(baseline, fresh *Doc, opts DiffOptions) []Finding {
	if opts.MaxNsRegress <= 0 {
		opts.MaxNsRegress = 0.20
	}
	freshBy := make(map[string]Result, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshBy[BaseName(b.Name)] = b
	}
	cpuMismatch := opts.SkipNsOnCPUMismatch && baseline.CPU != fresh.CPU
	var out []Finding
	for _, base := range baseline.Benchmarks {
		name := BaseName(base.Name)
		fr, ok := freshBy[name]
		if !ok {
			out = append(out, Finding{Name: name, Msg: "missing from fresh run (re-baseline deliberately if renamed)"})
			continue
		}
		if baseAllocs, ok := base.Metrics["allocs/op"]; ok {
			if frAllocs, ok := fr.Metrics["allocs/op"]; ok {
				switch {
				case baseAllocs == 0 && frAllocs > 0:
					out = append(out, Finding{
						Name: name, Fail: true,
						Msg: fmt.Sprintf("allocs/op regressed 0 → %g (pinned zero-alloc path)", frAllocs),
					})
				case baseAllocs > 0 && frAllocs > baseAllocs*(1+opts.MaxNsRegress):
					out = append(out, Finding{
						Name: name, Fail: true,
						Msg: fmt.Sprintf("allocs/op regressed %g → %g (>%d%%)", baseAllocs, frAllocs, int(opts.MaxNsRegress*100)),
					})
				}
			}
		}
		baseNs, okB := base.Metrics["ns/op"]
		frNs, okF := fr.Metrics["ns/op"]
		if okB && okF && baseNs > 0 {
			if cpuMismatch {
				continue // allocs compared above; wall clock not comparable
			}
			if frNs > baseNs*(1+opts.MaxNsRegress) {
				out = append(out, Finding{
					Name: name, Fail: true,
					Msg: fmt.Sprintf("ns/op regressed %.0f → %.0f (>%d%%)", baseNs, frNs, int(opts.MaxNsRegress*100)),
				})
			}
		}
	}
	if cpuMismatch {
		out = append(out, Finding{
			Name: "(doc)",
			Msg:  fmt.Sprintf("cpu mismatch (%q vs %q): ns/op comparisons skipped, allocs/op still gated", baseline.CPU, fresh.CPU),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Fail && !out[j].Fail })
	return out
}
