package tpchq

import (
	"math/rand"
	"testing"

	"repro/internal/cqenum"
	"repro/internal/hypergraph"
	"repro/internal/mcucq"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/tpch"
	"repro/internal/unionenum"
)

func smallDB(t *testing.T) *relation.Database {
	t.Helper()
	db, err := tpch.Generate(tpch.Config{ScaleFactor: 0.01, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := PrepareDerived(db); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAllCQsAreFreeConnex(t *testing.T) {
	for _, q := range CQs() {
		if !hypergraph.IsFreeConnex(q) {
			t.Errorf("%s is not free-connex", q.Name)
		}
	}
	for _, q := range []*query.CQ{QS7(), QC7(), QN2(), QP2(), QS2(), QA(), QE()} {
		if !hypergraph.IsFreeConnex(q) {
			t.Errorf("%s is not free-connex", q.Name)
		}
	}
}

func TestCQsMatchOracle(t *testing.T) {
	db := smallDB(t)
	for _, q := range CQs() {
		c, err := cqenum.Prepare(db, q, reduce.Options{})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		want, err := naive.Evaluate(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if c.Count() != int64(len(want)) {
			t.Fatalf("%s: Count = %d, oracle = %d", q.Name, c.Count(), len(want))
		}
		if c.Count() == 0 {
			t.Fatalf("%s: empty result at this scale; test is vacuous", q.Name)
		}
		// Spot-check membership of random accesses.
		rng := rand.New(rand.NewSource(1))
		oracle := make(map[string]bool, len(want))
		for _, a := range want {
			oracle[a.Key()] = true
		}
		for i := 0; i < 50; i++ {
			j := rng.Int63n(c.Count())
			a, err := c.Index.Access(j)
			if err != nil {
				t.Fatal(err)
			}
			if !oracle[a.Key()] {
				t.Fatalf("%s: Access(%d) = %v not in oracle", q.Name, j, a)
			}
			if jj, ok := c.Index.InvertedAccess(a); !ok || jj != j {
				t.Fatalf("%s: inverted access mismatch at %d", q.Name, j)
			}
		}
	}
}

func TestUCQsMatchOracleViaREnumUCQ(t *testing.T) {
	db := smallDB(t)
	for _, u := range UCQs() {
		e, err := unionenum.NewFromUCQ(db, u, rand.New(rand.NewSource(3)), reduce.Options{})
		if err != nil {
			t.Fatalf("%s: %v", u.Name, err)
		}
		want, err := naive.EvaluateUCQ(db, u)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		var got []relation.Tuple
		for {
			a, ok := e.Next()
			if !ok {
				break
			}
			if seen[a.Key()] {
				t.Fatalf("%s: duplicate", u.Name)
			}
			seen[a.Key()] = true
			got = append(got, a)
		}
		if !naive.SameAnswerSet(got, want) {
			t.Fatalf("%s: got %d, oracle %d", u.Name, len(got), len(want))
		}
	}
}

func TestUCQsAreMutuallyCompatible(t *testing.T) {
	db := smallDB(t)
	for _, u := range UCQs() {
		m, err := mcucq.New(db, u, mcucq.Options{Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", u.Name, err)
		}
		want, err := naive.EvaluateUCQ(db, u)
		if err != nil {
			t.Fatal(err)
		}
		if m.Count() != int64(len(want)) {
			t.Fatalf("%s: Count = %d, oracle = %d", u.Name, m.Count(), len(want))
		}
		// Full bijection check.
		seen := make(map[string]bool)
		var got []relation.Tuple
		for j := int64(0); j < m.Count(); j++ {
			a, err := m.Access(j)
			if err != nil {
				t.Fatalf("%s: Access(%d): %v", u.Name, j, err)
			}
			if seen[a.Key()] {
				t.Fatalf("%s: duplicate at %d", u.Name, j)
			}
			seen[a.Key()] = true
			got = append(got, a)
		}
		if !naive.SameAnswerSet(got, want) {
			t.Fatalf("%s: wrong answer set", u.Name)
		}
	}
}

func TestUnionAEIsDisjoint(t *testing.T) {
	db := smallDB(t)
	qa, err := naive.Evaluate(db, QA())
	if err != nil {
		t.Fatal(err)
	}
	qe, err := naive.Evaluate(db, QE())
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]bool)
	for _, a := range qa {
		keys[a.Key()] = true
	}
	for _, a := range qe {
		if keys[a.Key()] {
			t.Fatal("QA and QE overlap")
		}
	}
	if len(qa) == 0 || len(qe) == 0 {
		t.Fatal("degenerate: a disjunct is empty")
	}
}

func TestUnionQ7Overlaps(t *testing.T) {
	db := smallDB(t)
	u := UnionQ7()
	qi, err := u.Intersection("QS7∩QC7", []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := naive.Evaluate(db, qi)
	if err != nil {
		t.Fatal(err)
	}
	if len(inter) == 0 {
		t.Fatal("QS7 ∩ QC7 empty at this scale; rejection experiments would be vacuous")
	}
}

func TestPrepareDerivedMissingTables(t *testing.T) {
	db := relation.NewDatabase()
	if err := PrepareDerived(db); err == nil {
		t.Fatal("missing nation accepted")
	}
}

func TestSelectionsSelect(t *testing.T) {
	db := smallDB(t)
	n0, _ := db.Relation("nation0")
	if n0.Len() != 1 || n0.Tuple(0)[0] != 0 {
		t.Fatal("nation0 wrong")
	}
	us, _ := db.Relation("nation_us")
	if us.Len() != 1 || us.Tuple(0)[0] != relation.Value(tpch.NationKeyUS) {
		t.Fatal("nation_us wrong")
	}
	pe, _ := db.Relation("part_even")
	for _, tu := range pe.Tuples() {
		if tu[0]%2 != 0 {
			t.Fatal("part_even has odd key")
		}
	}
	kn, _ := db.Relation("nation_kn")
	if kn.Len() != 25 || kn.Arity() != 2 {
		t.Fatal("nation_kn wrong")
	}
}
