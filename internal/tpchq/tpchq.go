// Package tpchq defines the paper's experimental workload (Section 6 and
// Appendix B.1): the six free-connex CQs Q0, Q2, Q3, Q7, Q9, Q10 over the
// TPC-H schema, and the UCQ components QS7, QC7 (Q7 with the supplier /
// customer restricted to the United States), QN2, QP2, QS2 (Q2 with nation /
// part / supplier selections) and QA, QE (American / British suppliers'
// orders).
//
// Selections are realized as order-preserving filtered copies of the base
// relations, registered by PrepareDerived — the same "different selections
// applied on the same initial relations" construction the paper uses, which
// is what makes the unions mutually compatible (Section 5.2).
package tpchq

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tpch"
)

// PrepareDerived registers the filtered/projected relations used by the UCQ
// workloads. Idempotent.
func PrepareDerived(db *relation.Database) error {
	nation, err := db.Relation("nation")
	if err != nil {
		return fmt.Errorf("tpchq: %w", err)
	}
	part, err := db.Relation("part")
	if err != nil {
		return fmt.Errorf("tpchq: %w", err)
	}
	supplier, err := db.Relation("supplier")
	if err != nil {
		return fmt.Errorf("tpchq: %w", err)
	}

	// nation projected to (key, name) and its US selection — the N^i / M^i
	// relations of QS7/QC7.
	kn, err := nation.Project("nation_kn", []string{"n_nationkey", "n_name"})
	if err != nil {
		return err
	}
	db.Add(kn)
	db.Add(kn.Filter("nation_kn_us", func(t relation.Tuple) bool {
		return t[0] == relation.Value(tpch.NationKeyUS)
	}))

	// Selections for QN2 / QA / QE.
	db.Add(nation.Filter("nation0", func(t relation.Tuple) bool { return t[0] == 0 }))
	db.Add(nation.Filter("nation_us", func(t relation.Tuple) bool {
		return t[0] == relation.Value(tpch.NationKeyUS)
	}))
	db.Add(nation.Filter("nation_uk", func(t relation.Tuple) bool {
		return t[0] == relation.Value(tpch.NationKeyUK)
	}))

	// Parity selections for QP2 / QS2.
	db.Add(part.Filter("part_even", func(t relation.Tuple) bool { return t[0]%2 == 0 }))
	db.Add(supplier.Filter("supplier_even", func(t relation.Tuple) bool { return t[0]%2 == 0 }))
	return nil
}

// Q0 is the chain join PARTSUPP–SUPPLIER–NATION–REGION.
func Q0() *query.CQ {
	return query.MustCQ("Q0",
		[]string{"rk", "nk", "sk", "pk"},
		query.NewAtom("region", query.V("rk"), query.V("rn")),
		query.NewAtom("nation", query.V("nk"), query.V("nn"), query.V("rk")),
		query.NewAtom("supplier", query.V("sk"), query.V("sn"), query.V("nk")),
		query.NewAtom("partsupp", query.V("pk"), query.V("sk")),
	)
}

// Q2 is Q0 extended with PART on ps_partkey = p_partkey.
func Q2() *query.CQ {
	q := Q0()
	q.Name = "Q2"
	q.Body = append(q.Body, query.NewAtom("part", query.V("pk"), query.V("pn")))
	return q
}

// Q3 joins CUSTOMER, ORDERS and LINEITEM (with the lineitem attributes added
// by the paper for set/bag equivalence).
func Q3() *query.CQ {
	return query.MustCQ("Q3",
		[]string{"ok", "ck", "lpk", "lsk", "ln"},
		query.NewAtom("customer", query.V("ck"), query.V("cn"), query.V("cnk")),
		query.NewAtom("orders", query.V("ok"), query.V("ck")),
		query.NewAtom("lineitem", query.V("ok"), query.V("lpk"), query.V("lsk"), query.V("ln")),
	)
}

// Q7 is Q3 plus SUPPLIER and the two NATION joins (a self-join on nation).
func Q7() *query.CQ {
	return query.MustCQ("Q7",
		[]string{"ok", "ck", "nk1", "sk", "lpk", "ln", "nk2"},
		query.NewAtom("supplier", query.V("sk"), query.V("sn"), query.V("nk1")),
		query.NewAtom("lineitem", query.V("ok"), query.V("lpk"), query.V("sk"), query.V("ln")),
		query.NewAtom("orders", query.V("ok"), query.V("ck")),
		query.NewAtom("customer", query.V("ck"), query.V("cn"), query.V("nk2")),
		query.NewAtom("nation", query.V("nk1"), query.V("nn1"), query.V("rk1")),
		query.NewAtom("nation", query.V("nk2"), query.V("nn2"), query.V("rk2")),
	)
}

// Q9 joins NATION, SUPPLIER, LINEITEM, PARTSUPP, ORDERS and PART.
func Q9() *query.CQ {
	return query.MustCQ("Q9",
		[]string{"nk", "sk", "ok", "ln", "pk"},
		query.NewAtom("nation", query.V("nk"), query.V("nn"), query.V("rk")),
		query.NewAtom("supplier", query.V("sk"), query.V("sn"), query.V("nk")),
		query.NewAtom("lineitem", query.V("ok"), query.V("pk"), query.V("sk"), query.V("ln")),
		query.NewAtom("partsupp", query.V("pk"), query.V("sk")),
		query.NewAtom("orders", query.V("ok"), query.V("ck")),
		query.NewAtom("part", query.V("pk"), query.V("pn")),
	)
}

// Q10 is Q3 plus NATION on the customer side.
func Q10() *query.CQ {
	return query.MustCQ("Q10",
		[]string{"ok", "ck", "lpk", "lsk", "ln", "nk"},
		query.NewAtom("lineitem", query.V("ok"), query.V("lpk"), query.V("lsk"), query.V("ln")),
		query.NewAtom("orders", query.V("ok"), query.V("ck")),
		query.NewAtom("customer", query.V("ck"), query.V("cn"), query.V("nk")),
		query.NewAtom("nation", query.V("nk"), query.V("nn"), query.V("rk")),
	)
}

// CQs returns the six experiment CQs in the order the paper's figures use.
func CQs() []*query.CQ {
	return []*query.CQ{Q0(), Q2(), Q3(), Q7(), Q9(), Q10()}
}

// q7Variant builds the paper's Qi7 structure: Qi7(o,c,a,b,p,s,l,m,n) :-
// R(s,a), L(o,p,s,l), O(o,c), B(c,b), N(a,m), M(b,n), where N and M are
// (selections of) the nation (key, name) projection.
func q7Variant(name, nRel, mRel string) *query.CQ {
	return query.MustCQ(name,
		[]string{"o", "c", "a", "b", "p", "s", "l", "m", "n"},
		query.NewAtom("supplier", query.V("s"), query.V("sn"), query.V("a")),
		query.NewAtom("lineitem", query.V("o"), query.V("p"), query.V("s"), query.V("l")),
		query.NewAtom("orders", query.V("o"), query.V("c")),
		query.NewAtom("customer", query.V("c"), query.V("cn"), query.V("b")),
		query.NewAtom(nRel, query.V("a"), query.V("m")),
		query.NewAtom(mRel, query.V("b"), query.V("n")),
	)
}

// QS7 restricts Q7 to American suppliers.
func QS7() *query.CQ { return q7Variant("QS7", "nation_kn_us", "nation_kn") }

// QC7 restricts Q7 to American customers.
func QC7() *query.CQ { return q7Variant("QC7", "nation_kn", "nation_kn_us") }

// q2Variant builds Q2 with substitutable nation/part/supplier relations.
func q2Variant(name, nationRel, partRel, supplierRel string) *query.CQ {
	return query.MustCQ(name,
		[]string{"rk", "nk", "sk", "pk"},
		query.NewAtom("region", query.V("rk"), query.V("rn")),
		query.NewAtom(nationRel, query.V("nk"), query.V("nn"), query.V("rk")),
		query.NewAtom(supplierRel, query.V("sk"), query.V("sn"), query.V("nk")),
		query.NewAtom("partsupp", query.V("pk"), query.V("sk")),
		query.NewAtom(partRel, query.V("pk"), query.V("pn")),
	)
}

// QN2 restricts Q2 to nationkey 0.
func QN2() *query.CQ { return q2Variant("QN2", "nation0", "part", "supplier") }

// QP2 restricts Q2 to even part keys.
func QP2() *query.CQ { return q2Variant("QP2", "nation", "part_even", "supplier") }

// QS2 restricts Q2 to even supplier keys.
func QS2() *query.CQ { return q2Variant("QS2", "nation", "part", "supplier_even") }

// qaVariant builds QA/QE: orders whose supplier is from the given nation
// selection, joined down to REGION with r_name in the head.
func qaVariant(name, nationRel string) *query.CQ {
	return query.MustCQ(name,
		[]string{"ok", "sk", "nk", "rgk", "rname"},
		query.NewAtom("orders", query.V("ok"), query.V("ck")),
		query.NewAtom("lineitem", query.V("ok"), query.V("lpk"), query.V("sk"), query.V("ln")),
		query.NewAtom("supplier", query.V("sk"), query.V("sn"), query.V("nk")),
		query.NewAtom(nationRel, query.V("nk"), query.V("nn"), query.V("rgk")),
		query.NewAtom("region", query.V("rgk"), query.V("rname")),
	)
}

// QA selects orders supplied from the United States (nationkey 24).
func QA() *query.CQ { return qaVariant("QA", "nation_us") }

// QE selects orders supplied from the United Kingdom (nationkey 23).
func QE() *query.CQ { return qaVariant("QE", "nation_uk") }

// UnionQ7 is QS7 ∪ QC7 (binary, overlapping, mutually compatible).
func UnionQ7() *query.UCQ { return query.MustUCQ("QS7∪QC7", QS7(), QC7()) }

// UnionQ2 is QN2 ∪ QP2 ∪ QS2 (ternary, large intersection).
func UnionQ2() *query.UCQ { return query.MustUCQ("QN2∪QP2∪QS2", QN2(), QP2(), QS2()) }

// UnionAE is QA ∪ QE (binary, disjoint).
func UnionAE() *query.UCQ { return query.MustUCQ("QA∪QE", QA(), QE()) }

// UCQs returns the three experiment unions in the paper's Figure 4a order.
func UCQs() []*query.UCQ {
	return []*query.UCQ{UnionAE(), UnionQ7(), UnionQ2()}
}
