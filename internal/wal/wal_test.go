package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Op: OpInsert, Query: "Q", Relation: "r", Tuple: []string{"5", "1"}},
		{Op: OpInsert, Query: "Q", Relation: "r", Tuple: []string{"6", "2"}},
		{Op: OpDelete, Query: "Q", Relation: "r", Tuple: []string{"1", "2"}},
		{Op: OpInsert, Query: "U2", Relation: "s", Tuple: []string{"", "x y", "ünïcode"}},
		{Op: OpDelete, Query: "Q", Relation: "r", Tuple: nil},
	}
}

func writeLog(t *testing.T, path string, recs []Record) {
	t.Helper()
	l, err := Create(path, SyncAlways)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].Query != b[i].Query || a[i].Relation != b[i].Relation {
			return false
		}
		if len(a[i].Tuple) != len(b[i].Tuple) {
			return false
		}
		for j := range a[i].Tuple {
			if a[i].Tuple[j] != b[i].Tuple[j] {
				return false
			}
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	want := testRecords()
	writeLog(t, path, want)

	l, got, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if !recordsEqual(got, want) {
		t.Fatalf("replayed %+v, want %+v", got, want)
	}
	if l.TornTail() != nil {
		t.Fatalf("clean log reported torn tail: %v", l.TornTail())
	}
	if l.Depth() != int64(len(want)) {
		t.Fatalf("Depth = %d, want %d", l.Depth(), len(want))
	}

	// Appending after a reopen extends the same stream.
	extra := Record{Op: OpInsert, Query: "Q", Relation: "r", Tuple: []string{"9", "9"}}
	if err := l.Append(extra); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	l.Close()
	_, got2, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !recordsEqual(got2, append(want, extra)) {
		t.Fatalf("after append got %+v", got2)
	}
}

func TestOpenCreatesMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.log")
	l, recs, err := Open(path, SyncNone)
	if err != nil {
		t.Fatalf("Open on missing file: %v", err)
	}
	defer l.Close()
	if len(recs) != 0 || l.Depth() != 0 {
		t.Fatalf("fresh log not empty: %d recs, depth %d", len(recs), l.Depth())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("file not created: %v", err)
	}
}

// TestTornTailTruncation cuts a valid log at every possible byte length and
// checks the invariant the crash-recovery path depends on: Open never
// fails, never panics, recovers exactly the records whose bytes fully
// landed, and physically truncates the file so subsequent appends extend a
// clean prefix.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	want := testRecords()
	writeLog(t, full, want)
	b, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries, to know how many records survive a cut at n.
	var bounds []int64
	{
		off := int64(headerLen)
		bounds = append(bounds, off)
		for _, r := range want {
			buf, err := appendRecord(nil, r)
			if err != nil {
				t.Fatal(err)
			}
			off += int64(len(buf))
			bounds = append(bounds, off)
		}
		if off != int64(len(b)) {
			t.Fatalf("bounds drift: %d vs file %d", off, len(b))
		}
	}
	survivors := func(n int64) int {
		k := 0
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= n {
				k = i
			}
		}
		return k
	}

	for n := headerLen; n <= len(b); n++ {
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, b[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(path, SyncAlways)
		if err != nil {
			t.Fatalf("cut at %d: Open failed: %v", n, err)
		}
		wantK := survivors(int64(n))
		if len(recs) != wantK {
			t.Fatalf("cut at %d: recovered %d records, want %d", n, len(recs), wantK)
		}
		if !recordsEqual(recs, want[:wantK]) {
			t.Fatalf("cut at %d: wrong records", n)
		}
		torn := int64(n) != bounds[wantK]
		if torn && !errors.Is(l.TornTail(), ErrTornTail) {
			t.Fatalf("cut at %d: TornTail = %v, want ErrTornTail", n, l.TornTail())
		}
		if !torn && l.TornTail() != nil {
			t.Fatalf("cut at %d: clean cut reported torn: %v", n, l.TornTail())
		}
		// The tear must be physically gone: append, reopen, and the
		// stream is the survivors plus the new record.
		extra := Record{Op: OpInsert, Query: "Q", Relation: "r", Tuple: []string{"after", "tear"}}
		if err := l.Append(extra); err != nil {
			t.Fatalf("cut at %d: append after truncation: %v", n, err)
		}
		l.Close()
		_, recs2, err := Open(path, SyncAlways)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", n, err)
		}
		if !recordsEqual(recs2, append(append([]Record{}, want[:wantK]...), extra)) {
			t.Fatalf("cut at %d: post-truncation stream wrong", n)
		}
	}
}

// Cuts inside the header are fatal — there is no valid prefix to recover.
func TestTruncatedHeaderFatal(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	writeLog(t, full, testRecords())
	b, _ := os.ReadFile(full)
	for n := 1; n < headerLen; n++ {
		path := filepath.Join(dir, "hdr.log")
		os.WriteFile(path, b[:n], 0o644)
		if _, _, err := Open(path, SyncAlways); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", n, err)
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()

	bad := filepath.Join(dir, "magic.log")
	h := header(SyncAlways)
	h[0] ^= 0xFF
	os.WriteFile(bad, h, 0o644)
	if _, _, err := Open(bad, SyncAlways); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v", err)
	}

	vers := filepath.Join(dir, "version.log")
	h = header(SyncAlways)
	h[8] = 99
	os.WriteFile(vers, h, 0o644)
	_, _, err := Open(vers, SyncAlways)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: err = %v", err)
	}
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("family: %v should wrap ErrInvalid", err)
	}
}

// A flipped payload byte mid-file ends the recoverable stream at the flip:
// everything before it replays, everything after is discarded.
func TestChecksumMismatchEndsStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crc.log")
	want := testRecords()
	writeLog(t, path, want)
	b, _ := os.ReadFile(path)

	// Flip a byte inside the second record's payload.
	buf1, _ := appendRecord(nil, want[0])
	off := headerLen + len(buf1) + recordHeaderLen + 2
	b[off] ^= 0x01
	os.WriteFile(path, b, 0o644)

	l, recs, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if !recordsEqual(recs, want[:1]) {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
	if !errors.Is(l.TornTail(), ErrTornTail) {
		t.Fatalf("TornTail = %v", l.TornTail())
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeLog(t, path, testRecords())
	l, err := Create(path, SyncNone)
	if err != nil {
		t.Fatalf("Create over existing: %v", err)
	}
	l.Close()
	_, recs, err := Open(path, SyncNone)
	if err != nil || len(recs) != 0 {
		t.Fatalf("Create did not truncate: %d recs, err %v", len(recs), err)
	}
}

func TestAppendRejectsBadOp(t *testing.T) {
	l, err := Create(filepath.Join(t.TempDir(), "w.log"), SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Op: 7, Query: "Q"}); err == nil {
		t.Fatal("append of invalid op succeeded")
	}
	if l.Depth() != 0 {
		t.Fatalf("rejected append changed depth: %d", l.Depth())
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParseSyncPolicy("none"); err != nil || p != SyncNone {
		t.Fatalf("none: %v %v", p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestScanBytesEmptyAndGarbage(t *testing.T) {
	if _, _, err := ScanBytes(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("nil: %v", err)
	}
	if _, _, err := ScanBytes([]byte("not a wal file at all......")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage: %v", err)
	}
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" {
		t.Fatal("op strings")
	}
	if Op(9).String() == "" {
		t.Fatal("unknown op should still print")
	}
}

func TestRecordsIndependentOfLogBuffer(t *testing.T) {
	// Records returned by Open must not alias the file read buffer in a
	// way that mutation of one corrupts another.
	path := filepath.Join(t.TempDir(), "w.log")
	want := testRecords()
	writeLog(t, path, want)
	l, recs, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cp := make([]Record, len(recs))
	copy(cp, recs)
	if !reflect.DeepEqual(recs, cp) {
		t.Fatal("copy mismatch")
	}
}
