// Package wal implements the write-ahead log behind durable dynamic
// entries.
//
// A dynamic entry's index lives on the heap; the snapshot catalog persists
// its base contents only at explicit save/compaction points. The WAL closes
// the gap between those points: every accepted /update is appended (and,
// under the default policy, fsynced) to the log *before* it is applied to
// the index, so an acknowledged update is always reconstructible as
//
//	newest gen-G.snap  +  replay of wal-G.log
//
// Records carry the update exactly as the server received it — op, target
// query, base relation, and the tuple's cell *strings* (not interned
// values). Replay re-interns the cells against the restored dictionary;
// because interning is append-only and deterministic, this reproduces the
// identical dictionary and value assignment without the log ever depending
// on dictionary state.
//
// The on-disk format follows internal/snapshot's discipline: a magic +
// version header, CRC-32C (Castagnoli) over every record payload, and a
// typed error family under ErrInvalid so callers can distinguish "not a
// WAL" from "a WAL with a torn tail". A torn or corrupt tail — the
// signature of a crash mid-append — is truncated away on open, never
// panicked on.
//
// Layout (all integers little-endian, independent of host order — the log
// is rewritten on every compaction, so zero-copy native-order access buys
// nothing here):
//
//	header (24 bytes): magic "RNMWAL01" | version u32 | policy u8 | reserved[11]
//	record: payloadLen u32 | crc32c(payload) u32 | payload
//	payload: op u8 | str query | str relation | ncells u32 | str*ncells
//	str: len u32 | bytes
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

const (
	magic = "RNMWAL01"

	// Version is the current log format version. Mismatches fail with
	// ErrVersion rather than being guessed at.
	Version uint32 = 1

	headerLen       = 24
	recordHeaderLen = 8

	// maxRecordLen bounds a single record's payload. A length prefix
	// beyond it is framing garbage (a torn write or corruption), not a
	// plausible update, and is treated as the end of the log.
	maxRecordLen = 1 << 24
)

// castagnoli matches internal/snapshot's checksum choice.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed error family, mirroring internal/snapshot: every failure wraps
// ErrInvalid, so errors.Is(err, ErrInvalid) catches them all while the
// specific sentinels stay distinguishable.
var (
	// ErrInvalid is the root of the WAL error family.
	ErrInvalid = errors.New("wal: invalid or corrupt log")
	// ErrBadMagic: the file does not start with the WAL magic.
	ErrBadMagic = fmt.Errorf("%w: bad magic", ErrInvalid)
	// ErrVersion: the format version is one this build cannot read.
	ErrVersion = fmt.Errorf("%w: unsupported version", ErrInvalid)
	// ErrTruncated: the file ends inside the fixed header — there is no
	// valid prefix to recover.
	ErrTruncated = fmt.Errorf("%w: truncated header", ErrInvalid)
	// ErrTornTail: the record stream ends in a torn or corrupt record.
	// Unlike the errors above this one is recoverable: every record
	// before the tear is intact, and Open truncates the tear away.
	ErrTornTail = fmt.Errorf("%w: torn or corrupt tail record", ErrInvalid)
)

// Op is the kind of update a record carries.
type Op uint8

const (
	// OpInsert adds a tuple to a base relation of the target entry.
	OpInsert Op = 1
	// OpDelete removes a tuple from a base relation of the target entry.
	OpDelete Op = 2
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// SyncPolicy is the durability contract for appends, recorded in the log
// header so an operator inspecting a segment knows what it promised.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every append: an acknowledged update
	// survives SIGKILL and power loss. This is the default.
	SyncAlways SyncPolicy = 0
	// SyncNone leaves flushing to the OS page cache: fastest, but a
	// crash may lose the most recent acknowledged updates.
	SyncNone SyncPolicy = 1
)

// ParseSyncPolicy maps the flag spellings ("always", "none") to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always or none)", s)
}

// Record is one logged update, stored exactly as the server received it.
type Record struct {
	Op       Op
	Query    string   // served entry the update addressed
	Relation string   // base relation inside that entry
	Tuple    []string // cell strings as received; replay re-interns them
}

// appendRecord marshals rec (framing + payload) onto dst.
func appendRecord(dst []byte, rec Record) ([]byte, error) {
	if rec.Op != OpInsert && rec.Op != OpDelete {
		return nil, fmt.Errorf("wal: append: invalid op %d", rec.Op)
	}
	n := 1 + 4 + len(rec.Query) + 4 + len(rec.Relation) + 4
	for _, c := range rec.Tuple {
		n += 4 + len(c)
	}
	if n > maxRecordLen {
		return nil, fmt.Errorf("wal: append: record of %d bytes exceeds limit", n)
	}
	payload := make([]byte, 0, n)
	payload = append(payload, byte(rec.Op))
	payload = appendStr(payload, rec.Query)
	payload = appendStr(payload, rec.Relation)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Tuple)))
	for _, c := range rec.Tuple {
		payload = appendStr(payload, c)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...), nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// payloadCursor decodes a record payload with a sticky error, in the style
// of snapshot.Reader.
type payloadCursor struct {
	b   []byte
	err bool
}

func (c *payloadCursor) u8() uint8 {
	if c.err || len(c.b) < 1 {
		c.err = true
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *payloadCursor) u32() uint32 {
	if c.err || len(c.b) < 4 {
		c.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *payloadCursor) str() string {
	n := c.u32()
	if c.err || uint64(n) > uint64(len(c.b)) {
		c.err = true
		return ""
	}
	v := string(c.b[:n])
	c.b = c.b[n:]
	return v
}

// decodeRecord parses one payload whose CRC already checked out.
func decodeRecord(payload []byte) (Record, bool) {
	c := payloadCursor{b: payload}
	rec := Record{Op: Op(c.u8())}
	rec.Query = c.str()
	rec.Relation = c.str()
	ncells := c.u32()
	if c.err || uint64(ncells) > uint64(len(c.b)) { // each cell takes ≥ 4 bytes; cheap overflow guard
		return Record{}, false
	}
	rec.Tuple = make([]string, 0, ncells)
	for i := uint32(0); i < ncells; i++ {
		rec.Tuple = append(rec.Tuple, c.str())
	}
	if c.err || len(c.b) != 0 {
		return Record{}, false
	}
	if rec.Op != OpInsert && rec.Op != OpDelete {
		return Record{}, false
	}
	return rec, true
}

// ScanBytes decodes a serialized log. It returns every intact record and
// validLen, the byte offset of the end of the last intact record (at least
// headerLen for a well-formed header). The error is nil for a clean log;
// ErrTornTail (recoverable — recs and validLen still hold) when the stream
// ends in a torn or corrupt record; or a fatal member of the ErrInvalid
// family (validLen 0, no records) when the header itself is unreadable.
func ScanBytes(b []byte) (recs []Record, validLen int64, err error) {
	if len(b) < headerLen {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if string(b[:8]) != magic {
		return nil, 0, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != Version {
		return nil, 0, fmt.Errorf("%w: %d (want %d)", ErrVersion, v, Version)
	}
	off := int64(headerLen)
	rest := b[headerLen:]
	for len(rest) > 0 {
		if len(rest) < recordHeaderLen {
			return recs, off, fmt.Errorf("%w: %d stray bytes at offset %d", ErrTornTail, len(rest), off)
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if plen > maxRecordLen || uint64(plen) > uint64(len(rest)-recordHeaderLen) {
			return recs, off, fmt.Errorf("%w: record length %d at offset %d overruns the file", ErrTornTail, plen, off)
		}
		payload := rest[recordHeaderLen : recordHeaderLen+int(plen)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrTornTail, off)
		}
		rec, ok := decodeRecord(payload)
		if !ok {
			return recs, off, fmt.Errorf("%w: malformed record at offset %d", ErrTornTail, off)
		}
		recs = append(recs, rec)
		step := int64(recordHeaderLen) + int64(plen)
		off += step
		rest = rest[step:]
	}
	return recs, off, nil
}

// Log is an append-only WAL segment open for writing.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	policy SyncPolicy
	depth  int64 // records in the segment, replayed + appended
	torn   error // ErrTornTail detail recovered by Open, if any
	err    error // sticky write error: a failed append poisons the log
	hooks  Hooks
}

// Hooks observe the log's write path. Both fields are optional; when
// unset the append path does no timing at all. Callbacks run with
// the log's mutex held, so they must not call back into the Log.
type Hooks struct {
	// Append fires once per record: encoded size and the duration of
	// the file write (fsync excluded).
	Append func(bytes int, d time.Duration)
	// Sync fires once per fsync issued by the append path (SyncAlways
	// policy) or by an explicit Sync call.
	Sync func(d time.Duration)
}

// SetHooks installs (or replaces) the observation hooks.
func (l *Log) SetHooks(h Hooks) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hooks = h
}

// header builds the 24-byte file header.
func header(policy SyncPolicy) []byte {
	h := make([]byte, headerLen)
	copy(h, magic)
	binary.LittleEndian.PutUint32(h[8:12], Version)
	h[12] = byte(policy)
	return h
}

// Create starts a fresh, empty segment at path, truncating anything that
// was there. The header is written and synced before Create returns, so a
// crash immediately after cannot leave an unparseable file.
func Create(path string, policy SyncPolicy) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(header(policy)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, path: path, policy: policy}, nil
}

// Open opens the segment at path for appending, creating it if absent. It
// replays the existing records first and returns them; a torn or corrupt
// tail is truncated away (the file is physically shortened to the last
// intact record) and remembered — see TornTail — but does not fail the
// open. Fatal corruption (bad magic, unsupported version) does.
func Open(path string, policy SyncPolicy) (*Log, []Record, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		l, cerr := Create(path, policy)
		return l, nil, cerr
	}
	if err != nil {
		return nil, nil, err
	}
	if len(b) == 0 {
		// Created but never written (crash before the header sync
		// landed): indistinguishable from absent.
		l, cerr := Create(path, policy)
		return l, nil, cerr
	}
	recs, validLen, scanErr := ScanBytes(b)
	if scanErr != nil && !errors.Is(scanErr, ErrTornTail) {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, scanErr)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if scanErr != nil { // torn tail: drop it so appends extend a clean prefix
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{f: f, path: path, policy: policy, depth: int64(len(recs)), torn: scanErr}, recs, nil
}

// Append marshals rec and writes it to the segment, fsyncing per the
// policy. It returns only after the record is durable to that policy's
// standard — callers apply the update (and acknowledge it) strictly after.
func (l *Log) Append(rec Record) error {
	buf, err := appendRecord(nil, rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	var t0 time.Time
	if l.hooks.Append != nil {
		t0 = time.Now()
	}
	if _, err := l.f.Write(buf); err != nil {
		// A partial write leaves a torn tail; the next Open truncates
		// it. Poison the log so no later record can land after garbage.
		l.err = fmt.Errorf("wal: append: %w", err)
		return l.err
	}
	if l.hooks.Append != nil {
		l.hooks.Append(len(buf), time.Since(t0))
	}
	if l.policy == SyncAlways {
		if l.hooks.Sync != nil {
			t0 = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: sync: %w", err)
			return l.err
		}
		if l.hooks.Sync != nil {
			l.hooks.Sync(time.Since(t0))
		}
	}
	l.depth++
	return nil
}

// Sync forces the segment to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.hooks.Sync != nil {
		t0 := time.Now()
		err := l.f.Sync()
		l.hooks.Sync(time.Since(t0))
		return err
	}
	return l.f.Sync()
}

// Depth reports the number of records in the segment (replayed at open
// plus appended since).
func (l *Log) Depth() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.depth
}

// Path reports the segment's file path.
func (l *Log) Path() string { return l.path }

// TornTail reports the ErrTornTail detail recovered during Open, or nil if
// the segment was clean.
func (l *Log) TornTail() error { return l.torn }

// Close syncs and closes the segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	serr := l.f.Sync()
	cerr := l.f.Close()
	l.f = nil
	if l.err == nil {
		l.err = errors.New("wal: log is closed")
	}
	if serr != nil {
		return serr
	}
	return cerr
}
