package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALReplay drives ScanBytes — the decoder boot-time replay rests on —
// with arbitrary bytes, modeled on FuzzOpenSnapshot. The invariants:
//
//  1. never panic;
//  2. every failure is a member of the typed ErrInvalid family;
//  3. the recovery contract holds: when ScanBytes reports success or a
//     torn tail, rescanning the valid prefix it identified is clean and
//     yields the same records — i.e. truncation at validLen really does
//     produce a well-formed log.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed log...
	var valid []byte
	valid = append(valid, header(SyncAlways)...)
	for _, r := range []Record{
		{Op: OpInsert, Query: "Q", Relation: "r", Tuple: []string{"1", "2"}},
		{Op: OpDelete, Query: "Q", Relation: "r", Tuple: []string{"1", "2"}},
		{Op: OpInsert, Query: "U", Relation: "s", Tuple: []string{"", "long cell value here"}},
	} {
		var err error
		valid, err = appendRecord(valid, r)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid)
	f.Add(valid[:headerLen])                 // header only
	f.Add(valid[:len(valid)-3])              // torn tail
	f.Add([]byte{})                          // empty
	f.Add([]byte("RNMWAL01garbagegarbage~")) // short header-ish
	mut := bytes.Clone(valid)
	mut[headerLen+recordHeaderLen+1] ^= 0xFF // corrupt first payload
	f.Add(mut)
	badv := bytes.Clone(valid)
	badv[9] = 0x7F // absurd version
	f.Add(badv)

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, validLen, err := ScanBytes(b)
		if err != nil && !errors.Is(err, ErrInvalid) {
			t.Fatalf("error outside the typed family: %v", err)
		}
		if err != nil && !errors.Is(err, ErrTornTail) {
			// Fatal: no recovery claimed.
			if validLen != 0 || recs != nil {
				t.Fatalf("fatal error %v claimed a valid prefix (%d bytes, %d recs)", err, validLen, len(recs))
			}
			return
		}
		// Success or torn tail: the prefix must rescan cleanly.
		if validLen < headerLen || validLen > int64(len(b)) {
			t.Fatalf("validLen %d out of range (file %d)", validLen, len(b))
		}
		recs2, len2, err2 := ScanBytes(b[:validLen])
		if err2 != nil {
			t.Fatalf("rescan of valid prefix failed: %v", err2)
		}
		if len2 != validLen || len(recs2) != len(recs) {
			t.Fatalf("rescan drift: %d/%d bytes, %d/%d recs", len2, validLen, len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i].Op != recs2[i].Op || recs[i].Query != recs2[i].Query ||
				recs[i].Relation != recs2[i].Relation || len(recs[i].Tuple) != len(recs2[i].Tuple) {
				t.Fatalf("record %d differs on rescan", i)
			}
		}
	})
}
