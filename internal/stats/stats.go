// Package stats provides the descriptive statistics used by the delay
// experiments (Figures 2, 3 and 7 of the paper): quantiles, box-and-whisker
// summaries with Tukey outlier fences, mean and standard deviation, and a
// chi-square uniformity statistic used by the randomness tests.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a box-plot summary of a sample.
type Summary struct {
	N              int
	Mean           float64
	StdDev         float64
	Min, Max       float64
	Median         float64
	Q1, Q3         float64
	IQR            float64
	WhiskerLow     float64 // smallest sample ≥ Q1 - 1.5·IQR
	WhiskerHigh    float64 // largest sample ≤ Q3 + 1.5·IQR
	Outliers       int     // samples outside the whiskers
	OutlierPercent float64
}

// Summarize computes the box-plot summary of xs. It returns a zero Summary
// for empty input.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)

	var sum float64
	for _, x := range s {
		sum += x
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range s {
		d := x - mean
		ss += d * d
	}
	sd := 0.0
	if n > 1 {
		sd = math.Sqrt(ss / float64(n-1))
	}

	q1 := Quantile(s, 0.25)
	med := Quantile(s, 0.5)
	q3 := Quantile(s, 0.75)
	iqr := q3 - q1
	loFence := q1 - 1.5*iqr
	hiFence := q3 + 1.5*iqr

	wl, wh := s[0], s[n-1]
	outliers := 0
	// Whiskers: extreme samples within the fences.
	wlSet, whSet := false, false
	for _, x := range s {
		if x < loFence || x > hiFence {
			outliers++
			continue
		}
		if !wlSet {
			wl = x
			wlSet = true
		}
		wh = x
		whSet = true
	}
	if !wlSet || !whSet {
		wl, wh = med, med
	}

	return Summary{
		N: n, Mean: mean, StdDev: sd,
		Min: s[0], Max: s[n-1],
		Median: med, Q1: q1, Q3: q3, IQR: iqr,
		WhiskerLow: wl, WhiskerHigh: wh,
		Outliers:       outliers,
		OutlierPercent: 100 * float64(outliers) / float64(n),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already sorted sample,
// with linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ChiSquareUniform returns the chi-square statistic of observed counts
// against the uniform distribution, plus the degrees of freedom.
func ChiSquareUniform(counts []int) (stat float64, df int) {
	k := len(counts)
	if k < 2 {
		return 0, 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, k - 1
	}
	expected := float64(total) / float64(k)
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, k - 1
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g sd=%.3g med=%.3g iqr=[%.3g,%.3g] whiskers=[%.3g,%.3g] outliers=%.2f%%",
		s.N, s.Mean, s.StdDev, s.Median, s.Q1, s.Q3, s.WhiskerLow, s.WhiskerHigh, s.OutlierPercent)
}
