package stats

import "repro/internal/relation"

// Stats summarizes one relation for the cost-based join-tree planner: the
// tuple count plus per-column distinct counts, read off the same dense
// group-ID machinery (relation.GroupBy) the access index builds on. One
// GroupBy per column makes collection O(columns · n); the planner collects
// each base relation at most once per planning call.
type Stats struct {
	// Name is the relation's name (diagnostic only).
	Name string
	// Tuples is the relation's cardinality.
	Tuples int64
	// Distinct[i] is the number of distinct values in column i.
	Distinct []int64
}

// CollectRelation computes planner statistics for r.
func CollectRelation(r *relation.Relation) *Stats {
	s := &Stats{
		Name:     r.Name(),
		Tuples:   int64(r.Len()),
		Distinct: make([]int64, r.Arity()),
	}
	for i := range s.Distinct {
		s.Distinct[i] = int64(r.GroupBy([]int{i}).NumGroups())
	}
	return s
}

// DistinctAt estimates the number of distinct combinations over the given
// column positions: the product of per-column distinct counts, capped by the
// tuple count (the true joint count can never exceed either bound). An empty
// position set has exactly one combination.
func (s *Stats) DistinctAt(positions []int) int64 {
	if len(positions) == 0 {
		return 1
	}
	est := int64(1)
	for _, p := range positions {
		d := s.Distinct[p]
		if d < 1 {
			d = 1
		}
		// Saturate instead of overflowing: beyond Tuples the cap wins anyway.
		if est > s.Tuples/d+1 {
			est = s.Tuples
			break
		}
		est *= d
	}
	if est > s.Tuples {
		est = s.Tuples
	}
	if est < 1 && s.Tuples > 0 {
		est = 1
	}
	return est
}
