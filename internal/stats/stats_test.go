package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Median != 5 || s.StdDev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// 1..9: median 5, Q1 3, Q3 7, mean 5.
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	s := Summarize(xs)
	if s.Median != 5 || s.Mean != 5 {
		t.Fatalf("median/mean = %v/%v", s.Median, s.Mean)
	}
	if s.Q1 != 3 || s.Q3 != 7 || s.IQR != 4 {
		t.Fatalf("quartiles = %v,%v", s.Q1, s.Q3)
	}
	if s.Min != 1 || s.Max != 9 {
		t.Fatal("min/max wrong")
	}
	if s.Outliers != 0 {
		t.Fatal("no outliers expected")
	}
	if s.WhiskerLow != 1 || s.WhiskerHigh != 9 {
		t.Fatalf("whiskers = %v,%v", s.WhiskerLow, s.WhiskerHigh)
	}
}

func TestSummarizeOutliers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1000}
	s := Summarize(xs)
	if s.Outliers != 1 {
		t.Fatalf("outliers = %d, want 1", s.Outliers)
	}
	if s.WhiskerHigh != 9 {
		t.Fatalf("whisker high = %v, want 9", s.WhiskerHigh)
	}
	if math.Abs(s.OutlierPercent-10) > 1e-9 {
		t.Fatalf("outlier%% = %v", s.OutlierPercent)
	}
}

func TestSummarizeStdDev(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample SD of this classic set: variance = 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("sd = %v, want %v", s.StdDev, want)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Fatalf("Quantile(0.5) = %v", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	if Quantile([]float64{3}, 0.9) != 3 {
		t.Fatal("singleton quantile")
	}
}

func TestQuantileMatchesSortRank(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	sort.Float64s(xs)
	// With 101 points, the 0.25 quantile is exactly the 25th order statistic.
	if q := Quantile(xs, 0.25); q != xs[25] {
		t.Fatalf("quantile = %v, want %v", q, xs[25])
	}
}

func TestChiSquareUniform(t *testing.T) {
	stat, df := ChiSquareUniform([]int{10, 10, 10, 10})
	if stat != 0 || df != 3 {
		t.Fatalf("uniform counts: stat=%v df=%d", stat, df)
	}
	stat, _ = ChiSquareUniform([]int{20, 0})
	if stat != 20 {
		t.Fatalf("skewed counts: stat=%v, want 20", stat)
	}
	if _, df := ChiSquareUniform([]int{5}); df != 0 {
		t.Fatal("k<2 must have df 0")
	}
	if s, df := ChiSquareUniform([]int{0, 0}); s != 0 || df != 1 {
		t.Fatal("all-zero counts")
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1, 2, 3}).String() == "" {
		t.Fatal("empty String")
	}
}
