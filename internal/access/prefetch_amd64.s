//go:build amd64

#include "textflag.h"

// func prefetcht0(p *int64)
TEXT ·prefetcht0(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET
