// Snapshot encoding of the weighted join-tree index. The build-time shape —
// flat contiguous arrays addressed by integer bucket IDs — serializes as-is:
// every numeric section (columns, bucket offset tables, weights, prefix
// sums, child-ID arrays, group IDs) restores as a zero-copy view of the
// snapshot mapping, so reopening an index is O(validate) instead of
// O(preprocess). Derived wiring (schemaHeadPos, output assignment, the
// parent↔child shared-attribute positions) is recomputed through the same
// helpers the builder uses; only what cannot be recomputed is persisted.
package access

import (
	"repro/internal/relation"
	"repro/internal/snapshot"
)

// Marshal appends the index to a section writer: head, then every node in
// tree order (parent link, backing relation, grouping, flattened buckets,
// resolved child-bucket arrays).
func (idx *Index) Marshal(s *snapshot.SectionWriter) {
	s.U64(uint64(len(idx.head)))
	for _, h := range idx.head {
		s.Str(h)
	}
	parentOf := make([]int64, len(idx.nodes))
	for i := range parentOf {
		parentOf[i] = -1
	}
	for _, n := range idx.nodes {
		for _, c := range n.children {
			parentOf[c.ord] = int64(n.ord)
		}
	}
	s.U64(uint64(len(idx.nodes)))
	for _, n := range idx.nodes {
		s.I64(parentOf[n.ord])
		relation.MarshalRelation(s, n.rel)
		s.U64(uint64(n.grouping.NumGroups()))
		s.U32s(n.grouping.GroupOf)
		s.I32s(n.bucketOff)
		s.I32s(n.tupleIdx)
		s.I32s(n.tupleOrd)
		s.I64s(n.weight)
		s.I64s(n.start)
		s.I64s(n.total)
		s.I64s(n.maxW)
		s.U64(uint64(len(n.childGroup)))
		for _, cg := range n.childGroup {
			s.I32s(cg)
		}
	}
}

// restoredNode is one node as read back, before tree wiring.
type restoredNode struct {
	n         *node
	parentOrd int64
	numGroups int
	childN    int
	childCG   [][]int32
}

// UnmarshalIndex restores an index from a section reader. All structural
// invariants that memory safety of the probe paths depends on — array
// lengths, monotone bucket offsets, in-range tuple positions and child
// bucket IDs, tree shape — are validated; a violation is a typed
// snapshot.ErrCorrupt, never a panic. Weights and prefix sums are trusted
// as data (the section checksum vouches for them).
func UnmarshalIndex(r *snapshot.Reader) (*Index, error) {
	idx := &Index{}
	nh := r.U64()
	if nh > uint64(r.Remaining()/8) {
		return nil, snapshot.Corruptf("index: head count %d exceeds payload", nh)
	}
	idx.head = make([]string, nh)
	for i := range idx.head {
		idx.head[i] = r.Str()
	}
	numNodes := r.U64()
	if numNodes == 0 || numNodes > uint64(r.Remaining()/8) {
		return nil, snapshot.Corruptf("index: implausible node count %d", numNodes)
	}
	nodes := make([]restoredNode, numNodes)
	for i := range nodes {
		rn := &nodes[i]
		rn.parentOrd = r.I64()
		rel, err := relation.UnmarshalRelation(r)
		if err != nil {
			return nil, err
		}
		n := &node{rel: rel, ord: i}
		rn.n = n
		rn.numGroups = int(r.U64())
		groupOf := r.U32s()
		n.bucketOff = r.I32s()
		n.tupleIdx = r.I32s()
		n.tupleOrd = r.I32s()
		n.weight = r.I64s()
		n.start = r.I64s()
		n.total = r.I64s()
		n.maxW = r.I64s()
		rn.childN = int(r.U64())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if rn.childN < 0 || rn.childN > r.Remaining()/8 {
			return nil, snapshot.Corruptf("index node %d: implausible child count %d", i, rn.childN)
		}
		rn.childCG = make([][]int32, rn.childN)
		for ci := range rn.childCG {
			rn.childCG[ci] = r.I32s()
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		nrows := rel.Len()
		ng := rn.numGroups
		if ng < 0 || ng > nrows {
			return nil, snapshot.Corruptf("index node %d: %d groups over %d tuples", i, ng, nrows)
		}
		if len(groupOf) != nrows || len(n.tupleIdx) != nrows || len(n.tupleOrd) != nrows ||
			len(n.weight) != nrows || len(n.start) != nrows {
			return nil, snapshot.Corruptf("index node %d: per-tuple array lengths do not match %d tuples", i, nrows)
		}
		if len(n.bucketOff) != ng+1 || len(n.total) != ng || len(n.maxW) != ng {
			return nil, snapshot.Corruptf("index node %d: per-bucket array lengths do not match %d groups", i, ng)
		}
		if n.bucketOff[0] != 0 || int(n.bucketOff[ng]) != nrows {
			return nil, snapshot.Corruptf("index node %d: bucket offsets do not cover %d tuples", i, nrows)
		}
		for g := 0; g < ng; g++ {
			if n.bucketOff[g] > n.bucketOff[g+1] {
				return nil, snapshot.Corruptf("index node %d: bucket offsets not monotone at %d", i, g)
			}
		}
		var err2 error
		n.grouping, err2 = relation.RestoreGrouping(groupOf, ng, 0)
		if err2 != nil {
			return nil, err2
		}
		for g := uint32(0); int(g) < ng; g++ {
			if l := int64(n.bucketLen(g)); l > n.maxBucketLen {
				n.maxBucketLen = l
			}
		}
	}
	// Wire the tree: children attach to parents in node order, exactly the
	// order the builder appended them, so childGroup columns line up.
	for i := range nodes {
		rn := &nodes[i]
		p := rn.parentOrd
		switch {
		case p == -1:
			if idx.root != nil {
				return nil, snapshot.Corruptf("index: two roots")
			}
			idx.root = rn.n
		case p < 0 || p >= int64(numNodes) || p == int64(i):
			return nil, snapshot.Corruptf("index node %d: bad parent %d", i, p)
		default:
			if err := nodes[p].n.linkChild(rn.n); err != nil {
				return nil, snapshot.Corruptf("index node %d: %v", i, err)
			}
		}
		idx.nodes = append(idx.nodes, rn.n)
	}
	if idx.root == nil {
		return nil, snapshot.Corruptf("index: no root")
	}
	// A parent array with one root and no self-loops can still encode a
	// cycle among non-root nodes; reachability from the root rules it out.
	reached := 0
	var walk func(n *node)
	walk = func(n *node) {
		reached++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(idx.root)
	if reached != len(idx.nodes) {
		return nil, snapshot.Corruptf("index: %d of %d nodes reachable from the root", reached, len(idx.nodes))
	}

	// Per-edge validation + width fixup now that pAttPos is recomputed.
	for i := range nodes {
		rn := &nodes[i]
		n := rn.n
		if rn.childN != len(n.children) {
			return nil, snapshot.Corruptf("index node %d: %d child-group arrays for %d children", i, rn.childN, len(n.children))
		}
		n.childGroup = rn.childCG
		nrows := n.rel.Len()
		for ci, c := range n.children {
			cg := n.childGroup[ci]
			if len(cg) != nrows {
				return nil, snapshot.Corruptf("index node %d child %d: %d entries for %d tuples", i, ci, len(cg), nrows)
			}
			childNG := c.grouping.NumGroups()
			for pos, g := range cg {
				if g < -1 || int(g) >= childNG {
					return nil, snapshot.Corruptf("index node %d child %d: tuple %d resolves to bucket %d of %d", i, ci, pos, g, childNG)
				}
			}
		}
	}

	// Semantic validation: re-run Algorithm 2's aggregation as a check.
	// After it, every probe path is panic-free on this structure — the
	// binary search always lands inside its bucket, the mixed-radix
	// decomposition never divides by zero, and inverted access never
	// indexes out of range — so even a hostile file that defeated the
	// checksums cannot crash a probe, only answer wrong.
	for i, n := range idx.nodes {
		if err := n.validateAggregates(i); err != nil {
			return nil, err
		}
	}

	if err := idx.wireOutputs(); err != nil {
		return nil, snapshot.Corruptf("%v", err)
	}
	for _, n := range idx.nodes {
		n.outVals = make([][]relation.Value, len(n.outPos))
		for k, p := range n.outPos {
			n.outVals[k] = n.rel.Col(p)
		}
	}
	if idx.root.grouping.NumGroups() > 0 {
		if idx.root.grouping.NumGroups() != 1 {
			return nil, snapshot.Corruptf("index: root has %d buckets, want at most 1", idx.root.grouping.NumGroups())
		}
		idx.count = idx.root.total[0]
		if idx.count < 0 {
			return nil, snapshot.Corruptf("index: negative answer count %d", idx.count)
		}
	}
	return idx, nil
}

// validateAggregates checks the Algorithm 2 invariants the probe paths'
// memory safety rests on: per bucket, start is the running prefix sum of
// non-negative weights with total and maxW matching; tupleOrd is the exact
// inverse of the in-bucket tuple layout; and every slot's weight equals the
// product of its resolved child-bucket totals (zero exactly when a child
// bucket is missing). Runs after children are wired. O(n) per node.
func (n *node) validateAggregates(ord int) error {
	nrows := n.rel.Len()
	ng := n.grouping.NumGroups()
	for g := 0; g < ng; g++ {
		var running, mx int64
		for slot := n.bucketOff[g]; slot < n.bucketOff[g+1]; slot++ {
			w := n.weight[slot]
			if w < 0 {
				return snapshot.Corruptf("index node %d: negative weight at slot %d", ord, slot)
			}
			if n.start[slot] != running {
				return snapshot.Corruptf("index node %d: start[%d] = %d, want prefix sum %d", ord, slot, n.start[slot], running)
			}
			running += w
			if running < 0 {
				return snapshot.Corruptf("index node %d: weight overflow in bucket %d", ord, g)
			}
			if w > mx {
				mx = w
			}
			if ti := n.tupleIdx[slot]; ti < 0 || int(ti) >= nrows {
				return snapshot.Corruptf("index node %d: tuple index %d out of range", ord, ti)
			}
		}
		if n.total[g] != running {
			return snapshot.Corruptf("index node %d: total[%d] = %d, want %d", ord, g, n.total[g], running)
		}
		if n.maxW[g] != mx {
			return snapshot.Corruptf("index node %d: maxW[%d] = %d, want %d", ord, g, n.maxW[g], mx)
		}
	}
	// tupleOrd must invert the bucket layout: the slot it names holds pos.
	groupOf := n.grouping.GroupOf
	for pos := 0; pos < nrows; pos++ {
		g := groupOf[pos]
		ord2 := n.tupleOrd[pos]
		if ord2 < 0 || int(ord2) >= n.bucketLen(g) {
			return snapshot.Corruptf("index node %d: tuple ordinal %d outside bucket %d", ord, ord2, g)
		}
		if n.tupleIdx[n.bucketOff[g]+ord2] != int32(pos) {
			return snapshot.Corruptf("index node %d: tuple ordinal of %d does not invert the bucket layout", ord, pos)
		}
	}
	// Weights must equal the product of resolved child-bucket totals.
	for slot := 0; slot < nrows; slot++ {
		pos := n.tupleIdx[slot]
		prod := int64(1)
		for ci, c := range n.children {
			cg := n.childGroup[ci][pos]
			if cg < 0 {
				prod = 0
				break
			}
			ct := c.total[cg]
			if ct < 0 {
				return snapshot.Corruptf("index node %d: child %d bucket %d has negative total", ord, ci, cg)
			}
			if ct == 0 {
				prod = 0
				break
			}
			if prod > (1<<62)/ct {
				return snapshot.Corruptf("index node %d: weight product overflow at slot %d", ord, slot)
			}
			prod *= ct
		}
		if n.weight[slot] != prod {
			return snapshot.Corruptf("index node %d: weight[%d] = %d, want child product %d", ord, slot, n.weight[slot], prod)
		}
	}
	return nil
}
