package access

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/snapshot"
	"repro/internal/synth"
)

// marshalIndex frames one index as a single-section snapshot byte stream.
func marshalIndex(t *testing.T, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	s := w.Section(1)
	idx.Marshal(s)
	s.Close()
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func reopenIndex(t *testing.T, data []byte) (*Index, *snapshot.File) {
	t.Helper()
	f, err := snapshot.OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	r := f.Sections()[0].Reader()
	idx, err := UnmarshalIndex(r)
	if err != nil {
		t.Fatal(err)
	}
	return idx, f
}

func buildStarIndex(t *testing.T) *Index {
	t.Helper()
	db, q, err := synth.Star(synth.Config{Relations: 3, TuplesPerRelation: 60, KeyDomain: 25, SkewS: 1.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fj, err := reduce.BuildFullJoin(db, q, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := New(fj)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestIndexSnapshotRoundTrip proves the restored index is probe-for-probe
// identical to the built one: Count, the full enumeration order, inverted
// access of every answer, and Contains on hits and misses.
func TestIndexSnapshotRoundTrip(t *testing.T) {
	built := buildStarIndex(t)
	restored, f := reopenIndex(t, marshalIndex(t, built))
	defer f.Close()

	if restored.Count() != built.Count() {
		t.Fatalf("Count: restored %d, built %d", restored.Count(), built.Count())
	}
	if len(restored.Head()) != len(built.Head()) {
		t.Fatalf("Head: %v vs %v", restored.Head(), built.Head())
	}
	for i, h := range built.Head() {
		if restored.Head()[i] != h {
			t.Fatalf("Head[%d]: %q vs %q", i, restored.Head()[i], h)
		}
	}
	bBuf := make(relation.Tuple, len(built.Head()))
	rBuf := make(relation.Tuple, len(built.Head()))
	for j := int64(0); j < built.Count(); j++ {
		if err := built.AccessInto(j, bBuf); err != nil {
			t.Fatal(err)
		}
		if err := restored.AccessInto(j, rBuf); err != nil {
			t.Fatal(err)
		}
		if !bBuf.Equal(rBuf) {
			t.Fatalf("Access(%d): restored %v, built %v", j, rBuf, bBuf)
		}
		inv, ok := restored.InvertedAccess(bBuf)
		if !ok || inv != j {
			t.Fatalf("InvertedAccess(Access(%d)) = %d, %v", j, inv, ok)
		}
	}
	// Out-of-range and miss behavior.
	if _, err := restored.Access(built.Count()); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("Access(Count()) err = %v", err)
	}
	miss := make(relation.Tuple, len(built.Head()))
	for i := range miss {
		miss[i] = relation.Value(1 << 40)
	}
	if restored.Contains(miss) {
		t.Fatal("Contains(miss) = true")
	}
	// OrderSpec is derived from the restored schemas.
	bo, ro := built.OrderSpec(), restored.OrderSpec()
	if len(bo) != len(ro) {
		t.Fatalf("OrderSpec: %v vs %v", ro, bo)
	}
	for i := range bo {
		if bo[i] != ro[i] {
			t.Fatalf("OrderSpec[%d]: %q vs %q", i, ro[i], bo[i])
		}
	}
}

// TestIndexSnapshotBatchAndSampler checks the batched and sampling surfaces
// on a restored index (they exercise maxW/maxBucketLen and the child key
// positions recomputed at restore).
func TestIndexSnapshotBatchAndSampler(t *testing.T) {
	built := buildStarIndex(t)
	restored, f := reopenIndex(t, marshalIndex(t, built))
	defer f.Close()

	n := built.Count()
	js := make([]int64, 257)
	rng := rand.New(rand.NewSource(1))
	for i := range js {
		js[i] = rng.Int63n(n)
	}
	want, err := built.AccessBatch(js, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.AccessBatch(js, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("AccessBatch[%d]: %v vs %v", i, got[i], want[i])
		}
	}

	// The baseline samplers walk weights, maxW, maxBucketLen and the child
	// key wiring recomputed at restore; same seed must draw identically.
	type trial func(*Index, *rand.Rand) (relation.Tuple, bool)
	for name, draw := range map[string]trial{
		"EW": (*Index).SampleEW,
		"EO": (*Index).SampleEOTrial,
		"OE": (*Index).SampleOETrial,
		"RS": (*Index).SampleRSTrial,
	} {
		rb, rr := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
		for i := 0; i < 64; i++ {
			tb, okb := draw(built, rb)
			tr, okr := draw(restored, rr)
			if okb != okr || (okb && !tb.Equal(tr)) {
				t.Fatalf("%s sampler draw %d: restored (%v,%v), built (%v,%v)", name, i, tr, okr, tb, okb)
			}
		}
	}
}

// TestUnmarshalIndexRejectsCorruption pins that a structurally nonsensical
// index section comes back as a typed error (the root-level fuzz target
// covers the mutation space exhaustively).
func TestUnmarshalIndexRejectsCorruption(t *testing.T) {
	var gb bytes.Buffer
	gw := snapshot.NewWriter(&gb)
	gs := gw.Section(1)
	gs.U64(2) // head count 2 with no strings behind it
	gs.Close()
	if err := gw.Finish(); err != nil {
		t.Fatal(err)
	}
	gf, err := snapshot.OpenBytes(gb.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	if _, err := UnmarshalIndex(gf.Sections()[0].Reader()); !errors.Is(err, snapshot.ErrInvalid) {
		t.Fatalf("garbage index section: err = %v, want ErrInvalid family", err)
	}
}
