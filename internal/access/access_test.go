package access

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
)

// buildIndex reduces q over db and builds the index.
func buildIndex(t *testing.T, db *relation.Database, q *query.CQ) *Index {
	t.Helper()
	fj, err := reduce.BuildFullJoin(db, q, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := New(fj)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestExample44 reproduces Example 4.4 of the paper exactly: the weights and
// start indexes of the worked table, the result of Access(13), and the
// inverted access round trip. (Note: the paper's prose writes R2(v,y),
// R3(w,z) but its data table joins R2 on w and R3 on x; we follow the data.)
func TestExample44(t *testing.T) {
	db := relation.NewDatabase()
	// Constants: a1=1 a2=2, b1=11 b2=12, c1=21 c2=22, d1..d3=31..33, e1..e4=41..44.
	r1 := db.MustCreate("R1", "v", "w", "x")
	r1.MustInsert(1, 11, 21)
	r1.MustInsert(1, 11, 22)
	r1.MustInsert(2, 12, 21)
	r1.MustInsert(2, 12, 22)
	r2 := db.MustCreate("R2", "w", "y")
	r2.MustInsert(11, 31)
	r2.MustInsert(11, 32)
	r2.MustInsert(12, 32)
	r2.MustInsert(12, 33)
	r3 := db.MustCreate("R3", "x", "z")
	r3.MustInsert(21, 41)
	r3.MustInsert(21, 42)
	r3.MustInsert(21, 43)
	r3.MustInsert(22, 44)

	q := query.MustCQ("Q", []string{"v", "w", "x", "y", "z"},
		query.NewAtom("R1", query.V("v"), query.V("w"), query.V("x")),
		query.NewAtom("R2", query.V("w"), query.V("y")),
		query.NewAtom("R3", query.V("x"), query.V("z")))
	idx := buildIndex(t, db, q)

	if idx.Count() != 16 {
		t.Fatalf("Count = %d, want 16 (6+2+6+2)", idx.Count())
	}

	// Access(13) = (a2, b2, c1, d3, e3) per the paper.
	got, err := idx.Access(13)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.Tuple{2, 12, 21, 33, 43}
	if !got.Equal(want) {
		t.Fatalf("Access(13) = %v, want %v", got, want)
	}

	// InvertedAccess(a2,b2,c1,d3,e3) = 13 per the paper.
	j, ok := idx.InvertedAccess(want)
	if !ok || j != 13 {
		t.Fatalf("InvertedAccess = %d,%v, want 13,true", j, ok)
	}

	// The paper's startIndex table for R1: 0, 6, 8, 14. The root has a single
	// bucket (group 0), so its slots are the first bucketLen(0) entries of the
	// flattened start/weight arrays.
	wantStarts := []int64{0, 6, 8, 14}
	if idx.root.grouping.NumGroups() != 1 || idx.root.bucketLen(0) != 4 {
		t.Fatalf("root bucket has %d tuples in %d groups", idx.root.bucketLen(0), idx.root.grouping.NumGroups())
	}
	for i, s := range wantStarts {
		if idx.root.start[i] != s {
			t.Fatalf("startIndex[%d] = %d, want %d", i, idx.root.start[i], s)
		}
	}
	wantWeights := []int64{6, 2, 6, 2}
	for i, w := range wantWeights {
		if idx.root.weight[i] != w {
			t.Fatalf("weight[%d] = %d, want %d", i, idx.root.weight[i], w)
		}
	}
}

func TestAccessOutOfBounds(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x")
	r.MustInsert(1)
	q := query.MustCQ("q", []string{"x"}, query.NewAtom("R", query.V("x")))
	idx := buildIndex(t, db, q)
	if _, err := idx.Access(-1); !errors.Is(err, ErrOutOfBounds) {
		t.Fatal("negative index accepted")
	}
	if _, err := idx.Access(1); !errors.Is(err, ErrOutOfBounds) {
		t.Fatal("index == count accepted")
	}
	if _, err := idx.Access(0); err != nil {
		t.Fatal(err)
	}
	var buf relation.Tuple = make(relation.Tuple, 1)
	if err := idx.AccessInto(5, buf); !errors.Is(err, ErrOutOfBounds) {
		t.Fatal("AccessInto out of bounds accepted")
	}
	if err := idx.AccessInto(0, buf); err != nil || buf[0] != 1 {
		t.Fatal("AccessInto failed")
	}
}

// TestAccessBijection checks on random databases that Access enumerates
// exactly Q(D), each answer exactly once, and that InvertedAccess is its
// exact inverse.
func TestAccessBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	queries := []*query.CQ{
		query.MustCQ("full-chain", []string{"a", "b", "c", "d"},
			query.NewAtom("R", query.V("a"), query.V("b")),
			query.NewAtom("S", query.V("b"), query.V("c")),
			query.NewAtom("U", query.V("c"), query.V("d"))),
		query.MustCQ("proj-chain", []string{"a", "b"},
			query.NewAtom("R", query.V("a"), query.V("b")),
			query.NewAtom("S", query.V("b"), query.V("c")),
			query.NewAtom("U", query.V("c"), query.V("d"))),
		query.MustCQ("star", []string{"a", "b", "c"},
			query.NewAtom("R", query.V("a"), query.V("b")),
			query.NewAtom("S", query.V("a"), query.V("c")),
			query.NewAtom("U", query.V("a"), query.V("d"))),
	}
	for iter := 0; iter < 20; iter++ {
		db := relation.NewDatabase()
		for _, name := range []string{"R", "S", "U"} {
			re := db.MustCreate(name, name+"1", name+"2")
			n := 5 + rng.Intn(50)
			for i := 0; i < n; i++ {
				re.MustInsert(relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
			}
		}
		for _, q := range queries {
			idx := buildIndex(t, db, q)
			want, err := naive.Evaluate(db, q)
			if err != nil {
				t.Fatal(err)
			}
			if idx.Count() != int64(len(want)) {
				t.Fatalf("%s: Count = %d, oracle = %d", q.Name, idx.Count(), len(want))
			}
			var got []relation.Tuple
			seen := make(map[string]bool)
			for j := int64(0); j < idx.Count(); j++ {
				a, err := idx.Access(j)
				if err != nil {
					t.Fatalf("%s: Access(%d): %v", q.Name, j, err)
				}
				k := a.Key()
				if seen[k] {
					t.Fatalf("%s: duplicate answer at %d", q.Name, j)
				}
				seen[k] = true
				got = append(got, a)
				// Inverse property.
				jj, ok := idx.InvertedAccess(a)
				if !ok || jj != j {
					t.Fatalf("%s: InvertedAccess(Access(%d)) = %d,%v", q.Name, j, jj, ok)
				}
			}
			if !naive.SameAnswerSet(got, want) {
				t.Fatalf("%s: answer sets differ", q.Name)
			}
			// Non-answers must be rejected.
			for k := 0; k < 20; k++ {
				fake := make(relation.Tuple, len(q.Head))
				for i := range fake {
					fake[i] = relation.Value(rng.Intn(12))
				}
				if _, ok := idx.InvertedAccess(fake); ok != seen[fake.Key()] {
					t.Fatalf("%s: InvertedAccess membership wrong for %v", q.Name, fake)
				}
			}
		}
	}
}

// TestAccessOrderMatchesFullJoinAnswers pins the enumeration order to the
// deterministic backtracking order of FullJoin.Answers (the mc-UCQ
// compatibility construction relies on this order being structural).
func TestAccessOrderMatchesFullJoinAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := relation.NewDatabase()
	for _, name := range []string{"R", "S", "U"} {
		re := db.MustCreate(name, name+"1", name+"2")
		for i := 0; i < 40; i++ {
			re.MustInsert(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
		}
	}
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")),
		query.NewAtom("U", query.V("b"), query.V("d")))
	fj, err := reduce.BuildFullJoin(db, q, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := New(fj)
	if err != nil {
		t.Fatal(err)
	}
	ordered := fj.Answers()
	if int64(len(ordered)) != idx.Count() {
		t.Fatalf("count mismatch: %d vs %d", len(ordered), idx.Count())
	}
	for j, want := range ordered {
		got, err := idx.Access(int64(j))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("order mismatch at %d: access %v, backtrack %v", j, got, want)
		}
	}
}

func TestIndexEmptyResult(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x", "y")
	db.MustCreate("S", "y", "z")
	r.MustInsert(1, 2)
	q := query.MustCQ("q", []string{"x", "y", "z"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")))
	idx := buildIndex(t, db, q)
	if idx.Count() != 0 {
		t.Fatalf("Count = %d", idx.Count())
	}
	if _, err := idx.Access(0); !errors.Is(err, ErrOutOfBounds) {
		t.Fatal("Access on empty result succeeded")
	}
	if _, ok := idx.InvertedAccess(relation.Tuple{1, 2, 3}); ok {
		t.Fatal("InvertedAccess on empty result succeeded")
	}
	if _, ok := idx.SampleEW(rand.New(rand.NewSource(1))); ok {
		t.Fatal("SampleEW on empty result succeeded")
	}
}

func TestIndexBooleanQuery(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x")
	r.MustInsert(5)
	q := query.MustCQ("q", nil, query.NewAtom("R", query.V("x")))
	idx := buildIndex(t, db, q)
	if idx.Count() != 1 {
		t.Fatalf("Count = %d", idx.Count())
	}
	a, err := idx.Access(0)
	if err != nil || len(a) != 0 {
		t.Fatalf("Access(0) = %v, %v", a, err)
	}
	j, ok := idx.InvertedAccess(relation.Tuple{})
	if !ok || j != 0 {
		t.Fatal("InvertedAccess of empty tuple failed")
	}
}

func TestInvertedAccessWrongArity(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x")
	r.MustInsert(1)
	q := query.MustCQ("q", []string{"x"}, query.NewAtom("R", query.V("x")))
	idx := buildIndex(t, db, q)
	if _, ok := idx.InvertedAccess(relation.Tuple{1, 2}); ok {
		t.Fatal("wrong arity accepted")
	}
	if !idx.Contains(relation.Tuple{1}) || idx.Contains(relation.Tuple{9}) {
		t.Fatal("Contains wrong")
	}
}

// chiSquareUniform returns the chi-square statistic of observed counts
// against a uniform distribution over k categories.
func chiSquareUniform(counts []int, total int) float64 {
	k := len(counts)
	expected := float64(total) / float64(k)
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat
}

// testSamplerUniform draws from a sampler and checks the answer distribution
// is plausibly uniform (loose chi-square bound: mean k-1, std sqrt(2(k-1))).
func testSamplerUniform(t *testing.T, idx *Index, name string, trial func(*rand.Rand) (relation.Tuple, bool)) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	n := int(idx.Count())
	counts := make([]int, n)
	draws := 400 * n
	got := 0
	for i := 0; i < draws*100 && got < draws; i++ {
		a, ok := trial(rng)
		if !ok {
			continue
		}
		j, ok := idx.InvertedAccess(a)
		if !ok {
			t.Fatalf("%s produced a non-answer %v", name, a)
		}
		counts[j]++
		got++
	}
	if got < draws {
		t.Fatalf("%s rejected too often (%d/%d)", name, got, draws)
	}
	stat := chiSquareUniform(counts, draws)
	df := float64(n - 1)
	limit := df + 6*math.Sqrt(2*df) // ~6 sigma
	if stat > limit {
		t.Fatalf("%s: chi-square %.1f exceeds %.1f (df=%v): not uniform", name, stat, limit, df)
	}
}

func TestSamplersUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	// Skewed: value 0 has high fanout.
	for i := 0; i < 12; i++ {
		r.MustInsert(relation.Value(i), relation.Value(rng.Intn(3)))
	}
	for i := 0; i < 12; i++ {
		s.MustInsert(relation.Value(rng.Intn(3)), relation.Value(i))
	}
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	idx := buildIndex(t, db, q)
	if idx.Count() == 0 {
		t.Skip("degenerate instance")
	}
	testSamplerUniform(t, idx, "EW", idx.SampleEW)
	testSamplerUniform(t, idx, "EO", idx.SampleEOTrial)
	testSamplerUniform(t, idx, "OE", idx.SampleOETrial)
	testSamplerUniform(t, idx, "RS", idx.SampleRSTrial)
}

func TestSamplersMatchAnswerSet(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	for i := 0; i < 30; i++ {
		r.MustInsert(relation.Value(rng.Intn(10)), relation.Value(rng.Intn(5)))
		s.MustInsert(relation.Value(rng.Intn(5)), relation.Value(rng.Intn(10)))
	}
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	idx := buildIndex(t, db, q)
	for name, trial := range map[string]func(*rand.Rand) (relation.Tuple, bool){
		"EW": idx.SampleEW, "EO": idx.SampleEOTrial, "OE": idx.SampleOETrial, "RS": idx.SampleRSTrial,
	} {
		for i := 0; i < 500; i++ {
			a, ok := trial(rng)
			if !ok {
				continue
			}
			if !idx.Contains(a) {
				t.Fatalf("%s produced non-answer %v", name, a)
			}
		}
	}
}

func TestHeadExposed(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x", "y")
	r.MustInsert(1, 2)
	q := query.MustCQ("q", []string{"y", "x"}, query.NewAtom("R", query.V("x"), query.V("y")))
	idx := buildIndex(t, db, q)
	h := idx.Head()
	if len(h) != 2 || h[0] != "y" || h[1] != "x" {
		t.Fatalf("Head = %v", h)
	}
	// Output order must follow the head, not the relation schema.
	a, _ := idx.Access(0)
	if a[0] != 2 || a[1] != 1 {
		t.Fatalf("Access respects head order: %v", a)
	}
}
