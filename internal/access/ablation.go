package access

import (
	"repro/internal/relation"
)

// AccessLinear is Access with the in-bucket binary search replaced by a
// linear scan. It exists solely for the ablation benchmark quantifying the
// log-factor of Theorem 4.3 (DESIGN.md §5): on large buckets the scan makes
// the per-access cost linear in the bucket size.
func (idx *Index) AccessLinear(j int64) (relation.Tuple, error) {
	if j < 0 || j >= idx.count {
		return nil, ErrOutOfBounds
	}
	answer := make(relation.Tuple, len(idx.head))
	idx.subtreeAccessLinear(idx.root, idx.root.buckets[""], j, answer)
	return answer, nil
}

func (idx *Index) subtreeAccessLinear(n *node, b *bucket, j int64, answer relation.Tuple) {
	i := 0
	for b.start[i]+b.weight[i] <= j {
		i++
	}
	t := n.rel.Tuple(b.tuples[i])
	for k, col := range n.outCols {
		answer[col] = t[n.outPos[k]]
	}
	if len(n.children) == 0 {
		return
	}
	rem := j - b.start[i]
	childBuckets := make([]*bucket, len(n.children))
	for ci, c := range n.children {
		childBuckets[ci] = c.buckets[t.ProjectKey(n.childKeyPos[ci])]
	}
	for ci := len(n.children) - 1; ci >= 0; ci-- {
		cb := childBuckets[ci]
		ji := rem % cb.total
		rem /= cb.total
		idx.subtreeAccessLinear(n.children[ci], cb, ji, answer)
	}
}
