package access

import (
	"repro/internal/relation"
)

// AccessLinear is Access with the in-bucket binary search replaced by a
// linear scan. It exists solely for the ablation benchmark quantifying the
// log-factor of Theorem 4.3 (DESIGN.md §5): on large buckets the scan makes
// the per-access cost linear in the bucket size.
func (idx *Index) AccessLinear(j int64) (relation.Tuple, error) {
	if j < 0 || j >= idx.count {
		return nil, ErrOutOfBounds
	}
	answer := make(relation.Tuple, len(idx.head))
	idx.subtreeAccessLinear(idx.root, 0, j, answer)
	return answer, nil
}

func (idx *Index) subtreeAccessLinear(n *node, g uint32, j int64, answer relation.Tuple) {
	i := int(n.bucketOff[g])
	for n.start[i]+n.weight[i] <= j {
		i++
	}
	pos := n.tupleIdx[i]
	for k, col := range n.outCols {
		answer[col] = n.outVals[k][pos]
	}
	if len(n.children) == 0 {
		return
	}
	rem := j - n.start[i]
	for ci := len(n.children) - 1; ci >= 0; ci-- {
		c := n.children[ci]
		cg := uint32(n.childGroup[ci][pos])
		ct := c.total[cg]
		ji := rem % ct
		rem /= ct
		idx.subtreeAccessLinear(c, cg, ji, answer)
	}
}
