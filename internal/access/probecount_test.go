package access

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/relation"
)

func TestCountByProbingQuick(t *testing.T) {
	prop := func(nRaw uint32) bool {
		n := int64(nRaw % 5_000_000)
		probes := 0
		got := CountByProbing(func(j int64) error {
			probes++
			if j < n {
				return nil
			}
			return errProbe
		})
		if got != n {
			return false
		}
		// O(log n) probes: generous bound 2·log2(n) + 4.
		limit := 4
		for x := n; x > 0; x >>= 1 {
			limit += 2
		}
		return probes <= limit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCountByProbingEdges(t *testing.T) {
	if got := CountByProbing(func(int64) error { return errProbe }); got != 0 {
		t.Fatalf("empty count = %d", got)
	}
	if got := CountByProbing(func(j int64) error {
		if j == 0 {
			return nil
		}
		return errProbe
	}); got != 1 {
		t.Fatalf("singleton count = %d", got)
	}
}

// TestCountByProbingAgainstIndex: probing a real index recovers its count.
func TestCountByProbingAgainstIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	for i := 0; i < 100; i++ {
		r.MustInsert(relation.Value(rng.Intn(20)), relation.Value(rng.Intn(8)))
		s.MustInsert(relation.Value(rng.Intn(8)), relation.Value(rng.Intn(20)))
	}
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	idx := buildIndex(t, db, q)
	buf := make(relation.Tuple, 3)
	got := CountByProbing(func(j int64) error { return idx.AccessInto(j, buf) })
	if got != idx.Count() {
		t.Fatalf("probed count %d, index count %d", got, idx.Count())
	}
}
