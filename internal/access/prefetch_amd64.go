//go:build amd64

package access

// prefetcht0 issues a PREFETCHT0 for the cache line holding p: a hint to
// pull the line into all cache levels without stalling. Probes use it to
// overlap the child buckets' cache misses that the recursive descent would
// otherwise serialize. Implemented in prefetch_amd64.s.
//
//go:noescape
func prefetcht0(p *int64)
