package access

import "errors"

// CountByProbing determines the number of answers of a random-access
// structure using only its access routine, exactly as in the proof of
// Theorem 3.7: out-of-bound probes drive an exponential search for an upper
// bound followed by a binary search, so the count is found with
// O(log |answers|) probes. It exists for access structures that do not carry
// an explicit count (this library's indexes do; the function documents and
// tests the paper's argument, and serves third-party SetAccess
// implementations in the mcucq package).
//
// probe(j) must return nil for 0 ≤ j < n and ErrOutOfBounds (or any error)
// for j ≥ n.
func CountByProbing(probe func(j int64) error) int64 {
	if probe(0) != nil {
		return 0
	}
	// Exponential search for the first out-of-bound power of two.
	hi := int64(1)
	for probe(hi) == nil {
		if hi > (1 << 61) {
			// Defensive: a probe that never errors would loop forever.
			return hi
		}
		hi <<= 1
	}
	lo := hi / 2 // in bounds
	// Binary search for the last in-bound index in (lo, hi).
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if probe(mid) == nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// errProbe is a sentinel usable by CountByProbing tests.
var errProbe = errors.New("access: probe out of bounds")
