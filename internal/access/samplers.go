package access

import (
	"math/rand"

	"repro/internal/relation"
)

// This file hosts the single-trial uniform samplers used as the baseline of
// Section 6 (Zhao et al., "Random sampling over joins revisited"): each draws
// one uniform answer with replacement, differing in how much weight
// information it exploits and hence in how often it rejects. The
// with-replacement → k-distinct-answers wrapper (duplicate elimination) lives
// in internal/sample.
//
// Exact correspondence with Zhao et al.'s initializations is impossible
// without their code; the substitutes preserve the property the paper's
// experiments rely on: EW never rejects, EO and OE reject at rates driven by
// weight/fanout skew, RS rejects almost always. Each sampler below is
// provably uniform over Q(D) conditioned on acceptance:
//
//   - SampleEW:    P(a) = 1/count                           (no rejection)
//   - SampleEOTrial: P(a) = 1/(|R_root| · maxW_root)        (root rejection)
//   - SampleOETrial: P(a) = 1/∏_n maxBucketSize_n           (path rejection)
//   - SampleRSTrial: P(a) = 1/∏_n |R_n|                     (full rejection)

// SampleEW draws a uniform answer using exact weights: equivalent to
// Access(Uniform(0, Count())) — the EW initialization. Never rejects; ok is
// false only when the answer set is empty.
func (idx *Index) SampleEW(rng *rand.Rand) (relation.Tuple, bool) {
	if idx.count == 0 {
		return nil, false
	}
	t, err := idx.Access(rng.Int63n(idx.count))
	if err != nil {
		return nil, false
	}
	return t, true
}

// SampleEOTrial performs one trial of Olken-style rejection at the root: a
// uniformly random root tuple t is accepted with probability w(t)/maxW, and
// on acceptance the rest of the answer is completed exactly (a uniform split
// of t's weight range). P(accept) = count / (|R_root| · maxW_root), so skewed
// roots reject often. ok=false means the trial rejected; the caller retries.
func (idx *Index) SampleEOTrial(rng *rand.Rand) (relation.Tuple, bool) {
	if idx.count == 0 {
		return nil, false
	}
	root := idx.root
	i := rng.Intn(root.bucketLen(0)) // root bucket 0 starts at slot 0
	w := root.weight[i]
	if w == 0 || (w < root.maxW[0] && rng.Int63n(root.maxW[0]) >= w) {
		return nil, false
	}
	// Complete exactly: a uniform index within this tuple's range.
	j := root.start[i] + rng.Int63n(w)
	answer := make(relation.Tuple, len(idx.head))
	idx.subtreeAccess(root, 0, j, answer)
	return answer, true
}

// SampleOETrial performs one trial of a wander-join-style walk with end
// rejection: pick a uniformly random tuple in every visited bucket walking
// root to leaves, then accept with probability ∏ |B|/maxBucketSize. The walk
// probability of an answer is ∏ 1/|B|, so the acceptance factor makes the
// result exactly uniform. ok=false means rejection.
func (idx *Index) SampleOETrial(rng *rand.Rand) (relation.Tuple, bool) {
	if idx.count == 0 {
		return nil, false
	}
	answer := make(relation.Tuple, len(idx.head))
	prob := 1.0
	if !idx.wanderWalk(idx.root, 0, rng, answer, &prob) {
		return nil, false
	}
	// Accept with probability ∏ |B| / ∏ maxBucketSize (tracked as a float64;
	// the tiny rounding error is irrelevant for a baseline sampler).
	if rng.Float64() >= prob {
		return nil, false
	}
	return answer, true
}

func (idx *Index) wanderWalk(n *node, g uint32, rng *rand.Rand, answer relation.Tuple, prob *float64) bool {
	sz := n.bucketLen(g)
	if sz == 0 {
		return false
	}
	slot := int(n.bucketOff[g]) + rng.Intn(sz)
	if n.weight[slot] == 0 {
		// Dangling tuple (only without full reduction): dead end, reject.
		return false
	}
	*prob *= float64(sz) / float64(n.maxBucketLen)
	pos := n.tupleIdx[slot]
	for k, col := range n.outCols {
		answer[col] = n.outVals[k][pos]
	}
	for ci, c := range n.children {
		cg := n.childGroup[ci][pos]
		if cg < 0 {
			return false
		}
		if !idx.wanderWalk(c, uint32(cg), rng, answer, prob) {
			return false
		}
	}
	return true
}

// SampleRSTrial performs one trial of the fully naive sampler: a uniformly
// random tuple from every node's relation, accepted only when the picks are
// join consistent along the tree. Each answer corresponds to exactly one pick
// vector, so acceptance yields a uniform answer. ok=false means rejection.
func (idx *Index) SampleRSTrial(rng *rand.Rand) (relation.Tuple, bool) {
	if idx.count == 0 {
		return nil, false
	}
	picks := make([]int, len(idx.nodes))
	for i, n := range idx.nodes {
		if n.rel.Len() == 0 {
			return nil, false
		}
		picks[i] = rng.Intn(n.rel.Len())
	}
	// Join consistency along every tree edge: compare the shared-attribute
	// columns directly (no key encoding needed).
	var check func(n *node) bool
	check = func(n *node) bool {
		pos := picks[n.ord]
		for ci, c := range n.children {
			cpos := picks[c.ord]
			keyPos := n.childKeyPos[ci]
			for k := range keyPos {
				if n.rel.At(pos, keyPos[k]) != c.rel.At(cpos, c.pAttPos[k]) {
					return false
				}
			}
			if !check(c) {
				return false
			}
		}
		return true
	}
	if !check(idx.root) {
		return nil, false
	}
	// A consistent combination may still involve weight-zero (dangling)
	// tuples when full reduction was skipped; consistency along all tree
	// edges already implies a real answer, so no extra check is needed.
	answer := make(relation.Tuple, len(idx.head))
	for _, n := range idx.nodes {
		pos := picks[n.ord]
		for k, col := range n.outCols {
			answer[col] = n.outVals[k][pos]
		}
	}
	return answer, true
}
