package access

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// TestConcurrentReads: the index is immutable after construction, so
// concurrent Access / InvertedAccess / sampling from independent RNGs must
// be race-free (run with -race) and return consistent results.
func TestConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	for i := 0; i < 200; i++ {
		r.MustInsert(relation.Value(rng.Intn(40)), relation.Value(rng.Intn(10)))
		s.MustInsert(relation.Value(rng.Intn(10)), relation.Value(rng.Intn(40)))
	}
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	idx := buildIndex(t, db, q)
	if idx.Count() == 0 {
		t.Skip("degenerate")
	}

	// Reference pass (single-threaded).
	want := make([]relation.Tuple, idx.Count())
	for j := range want {
		a, err := idx.Access(int64(j))
		if err != nil {
			t.Fatal(err)
		}
		want[j] = a
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			local := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				j := local.Int63n(idx.Count())
				a, err := idx.Access(j)
				if err != nil {
					errs <- err
					return
				}
				if !a.Equal(want[j]) {
					errs <- errMismatch
					return
				}
				if jj, ok := idx.InvertedAccess(a); !ok || jj != j {
					errs <- errMismatch
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchErr{}

type mismatchErr struct{}

func (*mismatchErr) Error() string { return "concurrent read returned inconsistent result" }
