package access

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// TestConcurrentReads: the index is immutable after construction, so
// concurrent Access / InvertedAccess / sampling from independent RNGs must
// be race-free (run with -race) and return consistent results.
func TestConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	for i := 0; i < 200; i++ {
		r.MustInsert(relation.Value(rng.Intn(40)), relation.Value(rng.Intn(10)))
		s.MustInsert(relation.Value(rng.Intn(10)), relation.Value(rng.Intn(40)))
	}
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	idx := buildIndex(t, db, q)
	if idx.Count() == 0 {
		t.Skip("degenerate")
	}

	// Reference pass (single-threaded).
	want := make([]relation.Tuple, idx.Count())
	for j := range want {
		a, err := idx.Access(int64(j))
		if err != nil {
			t.Fatal(err)
		}
		want[j] = a
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			local := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				j := local.Int63n(idx.Count())
				a, err := idx.Access(j)
				if err != nil {
					errs <- err
					return
				}
				if !a.Equal(want[j]) {
					errs <- errMismatch
					return
				}
				if jj, ok := idx.InvertedAccess(a); !ok || jj != j {
					errs <- errMismatch
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchErr{}

type mismatchErr struct{}

func (*mismatchErr) Error() string { return "concurrent read returned inconsistent result" }

// TestConcurrentMixedProbes hammers one shared index from many goroutines
// with the full read surface — Access, AccessInto, AccessBatch, batched
// pages, InvertedAccess, Contains and all four baseline samplers — so the
// race detector sees every probe path interleaved with every other.
func TestConcurrentMixedProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	u := db.MustCreate("U", "c", "d")
	for i := 0; i < 400; i++ {
		r.MustInsert(relation.Value(rng.Intn(60)), relation.Value(rng.Intn(15)))
		s.MustInsert(relation.Value(rng.Intn(15)), relation.Value(rng.Intn(20)))
		u.MustInsert(relation.Value(rng.Intn(20)), relation.Value(rng.Intn(60)))
	}
	q := query.MustCQ("q", []string{"a", "b", "c", "d"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")),
		query.NewAtom("U", query.V("c"), query.V("d")))
	idx := buildIndex(t, db, q)
	n := idx.Count()
	if n == 0 {
		t.Skip("degenerate")
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			local := rand.New(rand.NewSource(seed))
			buf := make(relation.Tuple, len(idx.Head()))
			for i := 0; i < 300; i++ {
				switch i % 6 {
				case 0:
					j := local.Int63n(n)
					a, err := idx.Access(j)
					if err != nil {
						errs <- err
						return
					}
					if jj, ok := idx.InvertedAccess(a); !ok || jj != j {
						errs <- errMismatch
						return
					}
				case 1:
					if err := idx.AccessInto(local.Int63n(n), buf); err != nil {
						errs <- err
						return
					}
				case 2:
					js := make([]int64, 300) // above batchSerialThreshold: inner fan-out
					for k := range js {
						js[k] = local.Int63n(n)
					}
					out, err := idx.AccessBatch(js, 4)
					if err != nil {
						errs <- err
						return
					}
					probe := local.Intn(len(js))
					want, _ := idx.Access(js[probe])
					if !out[probe].Equal(want) {
						errs <- errMismatch
						return
					}
				case 3:
					if a, ok := idx.SampleEW(local); !ok || !idx.Contains(a) {
						errs <- errMismatch
						return
					}
				case 4:
					idx.SampleEOTrial(local)
					idx.SampleOETrial(local)
					idx.SampleRSTrial(local)
				case 5:
					if idx.Count() != n {
						errs <- errMismatch
						return
					}
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
