// Package access implements the paper's core data structure: the weighted
// join-tree index over a full acyclic join, built in linear time
// (Algorithm 2), supporting
//
//   - Count in O(1),
//   - random access Access(j) in O(log |D|) (Algorithm 3), and
//   - inverted access InvertedAccess(answer) in O(1) lookups (Algorithm 4),
//
// which together realize Theorem 4.3. The enumeration order defined by the
// index (answer j precedes answer j+1) is determined entirely by tuple
// insertion order in the underlying relations and by the deterministic join
// tree, which is what makes orders of structurally-aligned queries
// *compatible* in the sense of Section 5.2.
//
// # Representation
//
// Buckets are addressed by dense integer group IDs, not string keys: each
// node groups its relation once on the parent-shared attributes
// (relation.GroupBy), the per-bucket tuple/weight/start sequences live in
// contiguous per-node arrays sliced by a bucket offset table, and every
// parent tuple's child-bucket IDs are resolved once at build time into flat
// int32 arrays. A probe therefore never hashes a key and never allocates:
// Access walks the tree with array indexing and an in-bucket binary search,
// and inverted access replaces the per-node tuple reconstruction with a
// single packed-key (or stack-buffered string-key) position lookup.
//
// # Concurrency contract
//
// An Index is immutable once New (or NewWithOptions) returns: every probe —
// Access, AccessInto, AccessBatch, InvertedAccess, Contains, Count, the
// baseline samplers — only reads the structure, never memoizes, and is safe
// to call from any number of goroutines concurrently with no external
// locking. The column arrays of the underlying relations are likewise
// immutable after build. Construction itself may run the per-node bucket
// builds of independent join-tree subtrees on a worker pool (see
// BuildOptions); the parallel build produces a structure byte-for-byte
// identical to the serial one, because each node's buckets are a
// deterministic function of its own relation and its children's finished
// groupings.
package access

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/parallel"
	"repro/internal/reduce"
	"repro/internal/relation"
)

// ErrOutOfBounds is returned by Access for j outside [0, Count()).
var ErrOutOfBounds = errors.New("access: index out of bounds")

// Index is the preprocessed structure of Theorem 4.3.
type Index struct {
	head  []string
	root  *node
	nodes []*node
	count int64
}

// node mirrors one relation of the full-join tree. All per-bucket state is
// flattened: bucket g of this node owns slots bucketOff[g]..bucketOff[g+1]
// of tupleIdx/weight/start, with tuples in relation order within a bucket —
// exactly the order the map-of-slices representation used, so enumeration
// order is unchanged.
type node struct {
	rel      *relation.Relation
	children []*node
	ord      int // position in Index.nodes

	// pAttPos: positions (in this node's schema) of the attributes shared
	// with the parent, in this node's schema order. Empty at the root.
	pAttPos []int
	// childKeyPos[i]: positions in THIS node's schema of the attributes
	// shared with child i, in the same attribute order as the child's
	// pAttPos — so the parent can compute the child's bucket key directly
	// from its own tuple.
	childKeyPos [][]int

	// grouping assigns each tuple its bucket: dense group IDs on pAttPos.
	grouping *relation.Grouping

	// Flattened bucket storage (Algorithm 2's w(t) and startIndex(t)).
	bucketOff []int32 // len NumGroups+1; bucket g = slots [off[g], off[g+1])
	tupleIdx  []int32 // tuple positions, bucket-contiguous
	weight    []int64 // w(t) per slot
	start     []int64 // startIndex(t) per slot
	total     []int64 // w(B) per bucket
	maxW      []int64 // max weight per bucket (Olken-style sampler)

	// tupleOrd[pos]: ordinal of tuple pos within its bucket, supporting
	// constant-time inverted access (line 4 of Algorithm 4).
	tupleOrd []int32

	// childGroup[ci][pos]: bucket ID in child ci matching tuple pos of this
	// node, or -1 when the child has no matching bucket. Resolved once at
	// build time so no probe ever hashes a join key.
	childGroup [][]int32

	// Output assembly: this node provides output column outCols[i] from
	// schema position outPos[i]; outVals[i] is the backing column.
	outCols []int
	outPos  []int
	outVals [][]relation.Value

	// schemaHeadPos[i]: output column holding the value of schema attribute
	// i (every attribute of a full-join node is a head variable).
	schemaHeadPos []int

	// maxBucketLen is the largest bucket cardinality at this node (used by
	// the wander-join baseline sampler's acceptance probability).
	maxBucketLen int64
}

// bucketLen returns the number of tuples in bucket g.
func (n *node) bucketLen(g uint32) int {
	return int(n.bucketOff[g+1] - n.bucketOff[g])
}

// BuildOptions tunes index construction.
type BuildOptions struct {
	// Workers is the maximum number of goroutines building join-tree nodes
	// concurrently. 0 means parallel.Workers() (GOMAXPROCS); 1 forces the
	// serial build.
	Workers int
	// SerialThreshold is the minimum total tuple count (over all nodes)
	// before the parallel build kicks in; smaller inputs always build
	// serially, where goroutine overhead would dominate. 0 means
	// DefaultSerialThreshold.
	SerialThreshold int
	// Observe, when set, receives build-stage timings. The only stage
	// emitted here is "index_build" (the full weight computation);
	// callers layer their own stages on top.
	Observe func(stage string, d time.Duration)
}

// DefaultSerialThreshold is the tuple count below which parallel
// construction is not attempted.
const DefaultSerialThreshold = 1 << 15

// New builds the index from a reduced full join (Algorithm 2). Linear time in
// the total number of tuples. Large inputs are built with the default
// parallel options; see NewWithOptions.
func New(fj *reduce.FullJoin) (*Index, error) {
	return NewWithOptions(fj, BuildOptions{})
}

// NewWithOptions is New with explicit control over build parallelism.
// Independent join-tree subtrees are built concurrently: nodes are grouped
// by height and each wave runs on the worker pool, so a node starts only
// after all its children finished. The resulting index is identical to the
// serial build's.
func NewWithOptions(fj *reduce.FullJoin, opts BuildOptions) (*Index, error) {
	idx := &Index{head: fj.Head}

	// Build the mirrored node tree (fj.Nodes order for determinism).
	nodeOf := make(map[*reduce.Node]*node, len(fj.Nodes))
	for _, fn := range fj.Nodes {
		nodeOf[fn] = &node{rel: fn.Rel}
	}
	for _, fn := range fj.Nodes {
		n := nodeOf[fn]
		if fn.Parent == nil {
			idx.root = n
		} else if err := nodeOf[fn.Parent].linkChild(n); err != nil {
			return nil, err
		}
		n.ord = len(idx.nodes)
		idx.nodes = append(idx.nodes, n)
	}
	if idx.root == nil {
		return nil, fmt.Errorf("access: full join has no root")
	}
	if err := idx.wireOutputs(); err != nil {
		return nil, err
	}

	// Algorithm 2: leaf-to-root weight computation. Each node's buckets
	// depend only on its children's finished groupings, so nodes of equal
	// height are independent and can build concurrently.
	workers := opts.Workers
	if workers == 0 {
		workers = parallel.Workers()
	}
	threshold := opts.SerialThreshold
	if threshold == 0 {
		threshold = DefaultSerialThreshold
	}
	total := 0
	for _, n := range idx.nodes {
		total += n.rel.Len()
	}
	var buildStart time.Time
	if opts.Observe != nil {
		buildStart = time.Now()
	}
	if workers <= 1 || len(idx.nodes) < 2 || total < threshold {
		var build func(n *node)
		build = func(n *node) {
			for _, c := range n.children {
				build(c)
			}
			n.build()
		}
		build(idx.root)
	} else {
		for _, wave := range buildWaves(idx.root) {
			if err := parallel.ForEach(len(wave), workers, func(i int) error {
				wave[i].build()
				return nil
			}); err != nil {
				return nil, err
			}
		}
	}

	if opts.Observe != nil {
		opts.Observe("index_build", time.Since(buildStart))
	}

	if idx.root.grouping.NumGroups() > 0 {
		idx.count = idx.root.total[0]
	}
	return idx, nil
}

// linkChild wires one parent→child edge: the shared attributes (in child
// schema order) become the child's bucket key, and the parent records where
// to read that key in its own tuples. Shared by the builder and the
// snapshot-restore path, so the wiring cannot drift between them.
func (n *node) linkChild(c *node) error {
	shared := c.rel.Schema().Intersect(n.rel.Schema())
	var err error
	c.pAttPos, err = c.rel.Schema().Positions(shared)
	if err != nil {
		return err
	}
	keyPos, err := n.rel.Schema().Positions(shared)
	if err != nil {
		return err
	}
	n.children = append(n.children, c)
	n.childKeyPos = append(n.childKeyPos, keyPos)
	return nil
}

// wireOutputs computes every node's schemaHeadPos and assigns each output
// column to the first node (in idx.nodes order) whose schema contains it.
// Shared by the builder and the snapshot-restore path.
func (idx *Index) wireOutputs() error {
	headPos := make(map[string]int, len(idx.head))
	for i, h := range idx.head {
		headPos[h] = i
	}
	for _, n := range idx.nodes {
		schema := n.rel.Schema()
		n.schemaHeadPos = make([]int, len(schema))
		for i, attr := range schema {
			hp, ok := headPos[attr]
			if !ok {
				return fmt.Errorf("access: node attribute %q is not a head variable", attr)
			}
			n.schemaHeadPos[i] = hp
		}
	}
	assigned := make([]bool, len(idx.head))
	for _, n := range idx.nodes {
		n.outCols, n.outPos = nil, nil
		for i, hp := range n.schemaHeadPos {
			if !assigned[hp] {
				assigned[hp] = true
				n.outCols = append(n.outCols, hp)
				n.outPos = append(n.outPos, i)
			}
		}
	}
	for i, ok := range assigned {
		if !ok {
			return fmt.Errorf("access: head variable %q not covered by any node", idx.head[i])
		}
	}
	return nil
}

// build computes this node's grouping, flattened buckets, weights and prefix
// sums (the Algorithm 2 loop body). Every child must be built already. It
// writes only this node's fields and reads only the children's groupings and
// totals, which is what makes same-height nodes safe to build concurrently.
func (n *node) build() {
	nrows := n.rel.Len()
	n.grouping = n.rel.GroupBy(n.pAttPos)
	groupOf := n.grouping.GroupOf
	ng := n.grouping.NumGroups()

	// Resolve every tuple's child buckets once (the only key lookups left).
	n.childGroup = make([][]int32, len(n.children))
	for ci, c := range n.children {
		cg := make([]int32, nrows)
		keyPos := n.childKeyPos[ci]
		for pos := 0; pos < nrows; pos++ {
			if g, ok := c.grouping.LookupAt(n.rel, pos, keyPos); ok {
				cg[pos] = int32(g)
			} else {
				cg[pos] = -1
			}
		}
		n.childGroup[ci] = cg
	}

	// Counting sort of tuples into contiguous per-bucket slots (stable, so
	// tuples keep relation order within each bucket — the enumeration order
	// the map-of-slices representation defined).
	n.bucketOff = make([]int32, ng+1)
	for _, g := range groupOf {
		n.bucketOff[g+1]++
	}
	for g := 1; g <= ng; g++ {
		n.bucketOff[g] += n.bucketOff[g-1]
	}
	n.tupleIdx = make([]int32, nrows)
	n.weight = make([]int64, nrows)
	n.start = make([]int64, nrows)
	n.tupleOrd = make([]int32, nrows)
	n.total = make([]int64, ng)
	n.maxW = make([]int64, ng)
	fill := make([]int32, ng)
	for pos := 0; pos < nrows; pos++ {
		g := groupOf[pos]
		w := int64(1)
		for ci, c := range n.children {
			cg := n.childGroup[ci][pos]
			if cg < 0 {
				w = 0
				break
			}
			w *= c.total[cg]
		}
		slot := n.bucketOff[g] + fill[g]
		n.tupleIdx[slot] = int32(pos)
		n.tupleOrd[pos] = fill[g]
		n.weight[slot] = w
		n.start[slot] = n.total[g]
		n.total[g] += w
		if w > n.maxW[g] {
			n.maxW[g] = w
		}
		fill[g]++
	}
	for g := uint32(0); int(g) < ng; g++ {
		if l := int64(n.bucketLen(g)); l > n.maxBucketLen {
			n.maxBucketLen = l
		}
	}

	n.outVals = make([][]relation.Value, len(n.outPos))
	for k, p := range n.outPos {
		n.outVals[k] = n.rel.Col(p)
	}
}

// buildWaves groups the tree's nodes by height (leaves first): wave k holds
// the nodes whose longest path to a leaf is k. All nodes within a wave are
// mutually independent, and every dependency of wave k lives in waves < k.
func buildWaves(root *node) [][]*node {
	var waves [][]*node
	var height func(n *node) int
	height = func(n *node) int {
		h := 0
		for _, c := range n.children {
			if ch := height(c) + 1; ch > h {
				h = ch
			}
		}
		for len(waves) <= h {
			waves = append(waves, nil)
		}
		waves[h] = append(waves[h], n)
		return h
	}
	height(root)
	return waves
}

// Head returns the output variable order.
func (idx *Index) Head() []string { return idx.head }

// Count returns |Q(D)| in constant time.
func (idx *Index) Count() int64 { return idx.count }

// Access returns the j-th answer (0-based) in the index's enumeration order
// (Algorithm 3). It returns ErrOutOfBounds if j is not in [0, Count()).
// The only allocation is the returned tuple; AccessInto avoids even that.
func (idx *Index) Access(j int64) (relation.Tuple, error) {
	if j < 0 || j >= idx.count {
		return nil, ErrOutOfBounds
	}
	answer := make(relation.Tuple, len(idx.head))
	idx.subtreeAccess(idx.root, 0, j, answer)
	return answer, nil
}

// AccessInto is Access writing into a caller-provided buffer (len == arity).
// It performs no allocations (asserted by testing.AllocsPerRun).
func (idx *Index) AccessInto(j int64, answer relation.Tuple) error {
	if j < 0 || j >= idx.count {
		return ErrOutOfBounds
	}
	idx.subtreeAccess(idx.root, 0, j, answer)
	return nil
}

// batchSerialThreshold: below this many probes, the goroutine fan-out of
// AccessBatch costs more than it saves.
const batchSerialThreshold = 256

// AccessBatch returns Access(j) for every j in js, in order, fanning the
// probes out over up to `workers` goroutines (workers <= 0 means
// parallel.Workers(); small batches run serially either way). The whole
// batch is validated first: any out-of-range position fails the call with
// ErrOutOfBounds before any tuple is assembled. Duplicate positions are
// allowed and yield equal answers. Answers of one chunk share a single
// contiguous backing array, so a batch of k probes costs O(1) allocations
// per chunk instead of k.
func (idx *Index) AccessBatch(js []int64, workers int) ([]relation.Tuple, error) {
	return idx.AccessBatchContext(context.Background(), js, workers)
}

// AccessBatchContext is AccessBatch honoring cancellation between chunks:
// when ctx is cancelled mid-batch the remaining chunks are dropped, ctx.Err()
// is returned and no partial result escapes — chunks already running finish
// into their own backing arrays, so the answers of a concurrent or later
// batch are never corrupted. A background (never-cancellable) context takes
// the exact AccessBatch fast path.
func (idx *Index) AccessBatchContext(ctx context.Context, js []int64, workers int) ([]relation.Tuple, error) {
	for _, j := range js {
		if j < 0 || j >= idx.count {
			return nil, ErrOutOfBounds
		}
	}
	out := make([]relation.Tuple, len(js))
	if len(js) == 0 {
		return out, nil
	}
	arity := len(idx.head)
	fill := func(lo, hi int) error {
		backing := make([]relation.Value, (hi-lo)*arity)
		// Warm the root bucket's first binary-search lines before the chunk
		// loop: each parallel chunk starts on a cold worker stack, and the
		// first midpoint of the root search is the same address for every
		// probe, so one prefetch overlaps that miss with the backing-array
		// zeroing above.
		root := idx.root
		if mid := int(uint32(root.bucketOff[0]+root.bucketOff[1]) >> 1); mid < len(root.start) {
			prefetcht0(&root.start[mid])
			prefetcht0(&root.weight[mid])
		}
		for i := lo; i < hi; i++ {
			answer := relation.Tuple(backing[(i-lo)*arity : (i-lo+1)*arity : (i-lo+1)*arity])
			idx.subtreeAccess(idx.root, 0, js[i], answer)
			out[i] = answer
		}
		return nil
	}
	serial := workers == 1 || len(js) < batchSerialThreshold
	cancellable := ctx != nil && ctx.Done() != nil
	if !cancellable && serial {
		_ = fill(0, len(js))
		return out, nil
	}
	if serial {
		workers = 1
	}
	if err := parallel.ForEachChunkCtx(ctx, len(js), workers, fill); err != nil {
		return nil, err
	}
	return out, nil
}

// subtreeAccess resolves index j within bucket g of node n, writing the
// node's output columns and recursing into the children. Pure array
// arithmetic: no hashing, no allocation.
func (idx *Index) subtreeAccess(n *node, g uint32, j int64, answer relation.Tuple) {
	// Find t with startIndex(t) ≤ j < startIndex(t) + w(t): binary search on
	// the non-decreasing sequence start[i]+weight[i] (zero-weight tuples have
	// empty ranges and are skipped naturally).
	lo, hi := int(n.bucketOff[g]), int(n.bucketOff[g+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.start[mid]+n.weight[mid] > j {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	pos := n.tupleIdx[i]
	for k, col := range n.outCols {
		answer[col] = n.outVals[k][pos]
	}
	if len(n.children) == 0 {
		return
	}
	// SplitIndex (Algorithm 3 lines 12-13): mixed-radix decomposition, last
	// child least significant. Child buckets were resolved at build time.
	rem := j - n.start[i]
	if len(n.children) <= maxSplitChildren {
		// Two-pass split: resolve every child's bucket and sub-index first,
		// prefetching each child bucket's first binary-search lines as its
		// split is computed. The recursive descent would serialize those
		// cache misses — child ci's lines are not touched until children
		// ci+1..m finished — whereas here all of them are in flight before
		// the first recursion starts.
		var cgs [maxSplitChildren]uint32
		var jis [maxSplitChildren]int64
		for ci := len(n.children) - 1; ci >= 0; ci-- {
			c := n.children[ci]
			cg := uint32(n.childGroup[ci][pos])
			ct := c.total[cg]
			jis[ci] = rem % ct
			rem /= ct
			cgs[ci] = cg
			if mid := int(uint32(c.bucketOff[cg]+c.bucketOff[cg+1]) >> 1); mid < len(c.start) {
				prefetcht0(&c.start[mid])
				prefetcht0(&c.weight[mid])
			}
		}
		for ci := len(n.children) - 1; ci >= 0; ci-- {
			idx.subtreeAccess(n.children[ci], cgs[ci], jis[ci], answer)
		}
		return
	}
	for ci := len(n.children) - 1; ci >= 0; ci-- {
		c := n.children[ci]
		cg := uint32(n.childGroup[ci][pos])
		ct := c.total[cg]
		ji := rem % ct
		rem /= ct
		idx.subtreeAccess(c, cg, ji, answer)
	}
}

// maxSplitChildren bounds the stack arrays of the two-pass split; a node
// with more children (rare — join-tree fan-out is query-sized) takes the
// one-pass loop.
const maxSplitChildren = 8

// InvertedAccess returns the index j with Access(j) == answer, or ok=false if
// answer is not in Q(D) (Algorithm 4). Constant time in data complexity and
// allocation-free (asserted by testing.AllocsPerRun).
func (idx *Index) InvertedAccess(answer relation.Tuple) (int64, bool) {
	if len(answer) != len(idx.head) {
		return 0, false
	}
	return idx.invertedSubtree(idx.root, answer)
}

func (idx *Index) invertedSubtree(n *node, answer relation.Tuple) (int64, bool) {
	// Locate this node's tuple directly from the answer (no intermediate
	// tuple: the relation's position index is probed with a packed or
	// stack-buffered key).
	pos := n.rel.PositionProjected(answer, n.schemaHeadPos)
	if pos < 0 {
		return 0, false
	}
	g := n.grouping.GroupOf[pos]
	slot := n.bucketOff[g] + n.tupleOrd[pos]
	// CombineIndex (inverse of SplitIndex): left fold, last child least
	// significant.
	var offset int64
	for ci, c := range n.children {
		ji, ok := idx.invertedSubtree(c, answer)
		if !ok {
			return 0, false
		}
		cg := n.childGroup[ci][pos]
		if cg < 0 {
			return 0, false
		}
		offset = offset*c.total[cg] + ji
	}
	if n.weight[slot] == 0 {
		// Dangling tuple (possible when full reduction was skipped): the
		// combination is not a real answer.
		return 0, false
	}
	return n.start[slot] + offset, true
}

// Contains reports whether answer ∈ Q(D).
func (idx *Index) Contains(answer relation.Tuple) bool {
	_, ok := idx.InvertedAccess(answer)
	return ok
}

// OrderSpec returns the head variables in decreasing significance of the
// index's enumeration order: a pre-order traversal of the join tree,
// concatenating node schemas (first occurrence wins). When the index was
// built over lexicographically sorted relations (reduce.Options
// CanonicalOrder), the enumeration order is exactly the lexicographic order
// of the answers under this variable sequence — a limited form of the
// "direct access in lexicographic orders" studied in follow-up work.
func (idx *Index) OrderSpec() []string {
	var out []string
	seen := make(map[string]bool, len(idx.head))
	var walk func(n *node)
	walk = func(n *node) {
		for _, attr := range n.rel.Schema() {
			if !seen[attr] {
				seen[attr] = true
				out = append(out, attr)
			}
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	if idx.root != nil {
		walk(idx.root)
	}
	return out
}
