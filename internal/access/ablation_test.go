package access

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// TestAccessLinearAgreesWithAccess: the ablation variant must return exactly
// the same answers as the binary-search Access for every index.
func TestAccessLinearAgreesWithAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	u := db.MustCreate("U", "b", "d")
	for i := 0; i < 80; i++ {
		r.MustInsert(relation.Value(rng.Intn(15)), relation.Value(rng.Intn(6)))
		s.MustInsert(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(15)))
		u.MustInsert(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(15)))
	}
	q := query.MustCQ("q", []string{"a", "b", "c", "d"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")),
		query.NewAtom("U", query.V("b"), query.V("d")))
	idx := buildIndex(t, db, q)
	if idx.Count() == 0 {
		t.Skip("degenerate instance")
	}
	for j := int64(0); j < idx.Count(); j++ {
		a, err1 := idx.Access(j)
		b, err2 := idx.AccessLinear(j)
		if err1 != nil || err2 != nil || !a.Equal(b) {
			t.Fatalf("mismatch at %d: %v vs %v (%v, %v)", j, a, b, err1, err2)
		}
	}
	if _, err := idx.AccessLinear(-1); !errors.Is(err, ErrOutOfBounds) {
		t.Fatal("negative accepted")
	}
	if _, err := idx.AccessLinear(idx.Count()); !errors.Is(err, ErrOutOfBounds) {
		t.Fatal("count accepted")
	}
}
