package access

import (
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/synth"
)

// The probe paths are advertised allocation-free (package doc, README): no
// key is ever encoded to a string on the heap and no intermediate tuple is
// materialized. These tests pin that with testing.AllocsPerRun on both key
// representations — the packed 64-bit fast path (arity ≤ 2 nodes) and the
// wide stack-buffered string path (arity ≥ 3 nodes).

func allocIndexes(t *testing.T) map[string]*Index {
	t.Helper()
	out := make(map[string]*Index)

	// Chain: every node has arity 2 → packed keys end to end.
	db, q, err := synth.Chain(synth.Config{Relations: 3, TuplesPerRelation: 500, KeyDomain: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	out["packed"] = buildIndex(t, db, q)

	// Example 4.4 shape: the root R1 has arity 3 → wide (string) position
	// index probed with a stack buffer.
	db2 := relation.NewDatabase()
	r1 := db2.MustCreate("R1", "v", "w", "x")
	r2 := db2.MustCreate("R2", "w", "y")
	r3 := db2.MustCreate("R3", "x", "z")
	for i := 0; i < 40; i++ {
		r1.MustInsert(relation.Value(i%4), relation.Value(10+i%5), relation.Value(20+i%6))
		r2.MustInsert(relation.Value(10+i%5), relation.Value(30+i%7))
		r3.MustInsert(relation.Value(20+i%6), relation.Value(40+i%8))
	}
	q2 := query.MustCQ("W", []string{"v", "w", "x", "y", "z"},
		query.NewAtom("R1", query.V("v"), query.V("w"), query.V("x")),
		query.NewAtom("R2", query.V("w"), query.V("y")),
		query.NewAtom("R3", query.V("x"), query.V("z")))
	out["wide"] = buildIndex(t, db2, q2)

	return out
}

func TestProbesAreAllocationFree(t *testing.T) {
	for name, idx := range allocIndexes(t) {
		idx := idx
		t.Run(name, func(t *testing.T) {
			n := idx.Count()
			if n == 0 {
				t.Fatal("degenerate workload")
			}
			answer := make(relation.Tuple, len(idx.Head()))
			var j int64
			if got := testing.AllocsPerRun(200, func() {
				if err := idx.AccessInto(j%n, answer); err != nil {
					t.Fatal(err)
				}
				j++
			}); got != 0 {
				t.Errorf("AccessInto allocates %v per op, want 0", got)
			}

			// Collect real answers, then assert the inverted probes are free.
			answers := make([]relation.Tuple, 64)
			for i := range answers {
				a, err := idx.Access(int64(i) % n)
				if err != nil {
					t.Fatal(err)
				}
				answers[i] = a
			}
			j = 0
			if got := testing.AllocsPerRun(200, func() {
				k, ok := idx.InvertedAccess(answers[j%64])
				if !ok || k != int64(j%64)%n {
					t.Fatalf("inverted access broke at %d (k=%d ok=%v)", j, k, ok)
				}
				j++
			}); got != 0 {
				t.Errorf("InvertedAccess allocates %v per op, want 0", got)
			}

			// Contains on misses (the not-an-answer path) must be free too.
			miss := make(relation.Tuple, len(idx.Head()))
			for i := range miss {
				miss[i] = -9999
			}
			if got := testing.AllocsPerRun(200, func() {
				if idx.Contains(miss) {
					t.Fatal("impossible answer reported present")
				}
			}); got != 0 {
				t.Errorf("Contains(miss) allocates %v per op, want 0", got)
			}
		})
	}
}

// TestAccessSingleAllocation pins Access to exactly one allocation per call:
// the returned answer tuple itself.
func TestAccessSingleAllocation(t *testing.T) {
	for name, idx := range allocIndexes(t) {
		idx := idx
		t.Run(name, func(t *testing.T) {
			n := idx.Count()
			var j int64
			if got := testing.AllocsPerRun(200, func() {
				if _, err := idx.Access(j % n); err != nil {
					t.Fatal(err)
				}
				j++
			}); got > 1 {
				t.Errorf("Access allocates %v per op, want ≤ 1 (the answer tuple)", got)
			}
		})
	}
}
