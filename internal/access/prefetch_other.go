//go:build !amd64

package access

// prefetcht0 is a no-op on architectures without an explicit prefetch
// helper; the two-pass probe restructure still overlaps misses through the
// early loads themselves.
func prefetcht0(p *int64) { _ = p }
