package access

import (
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/synth"
)

// forceParallel builds with the wave scheduler regardless of input size.
var forceParallel = BuildOptions{Workers: 8, SerialThreshold: 1}

// TestParallelBuildMatchesSerial: the parallel (wave-scheduled) build must
// produce an index with the same count and the exact same enumeration order
// as the serial recursive build, on star, chain and skewed inputs.
func TestParallelBuildMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*relation.Database, *query.CQ, error)
	}{
		{"star4", func() (*relation.Database, *query.CQ, error) {
			return synth.Star(synth.Config{Relations: 4, TuplesPerRelation: 3000, KeyDomain: 200, Seed: 3})
		}},
		{"star4skew", func() (*relation.Database, *query.CQ, error) {
			return synth.Star(synth.Config{Relations: 4, TuplesPerRelation: 3000, KeyDomain: 200, Seed: 4, SkewS: 1.8})
		}},
		{"chain5", func() (*relation.Database, *query.CQ, error) {
			return synth.Chain(synth.Config{Relations: 5, TuplesPerRelation: 2000, KeyDomain: 60, Seed: 5})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, q, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			fj, err := reduce.BuildFullJoin(db, q, reduce.Options{})
			if err != nil {
				t.Fatal(err)
			}
			serial, err := NewWithOptions(fj, BuildOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewWithOptions(fj, forceParallel)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Count() != par.Count() {
				t.Fatalf("count diverged: serial %d, parallel %d", serial.Count(), par.Count())
			}
			n := serial.Count()
			if n == 0 {
				t.Skip("degenerate workload")
			}
			// Full equality is O(n · arity); cap the sweep but always include
			// the boundaries.
			probe := func(j int64) {
				a, err := serial.Access(j)
				if err != nil {
					t.Fatal(err)
				}
				b, err := par.Access(j)
				if err != nil {
					t.Fatal(err)
				}
				if !a.Equal(b) {
					t.Fatalf("Access(%d): serial %v, parallel %v", j, a, b)
				}
				if jj, ok := par.InvertedAccess(a); !ok || jj != j {
					t.Fatalf("parallel InvertedAccess(%v) = %d,%v want %d", a, jj, ok, j)
				}
			}
			probe(0)
			probe(n - 1)
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 5000; i++ {
				probe(rng.Int63n(n))
			}
		})
	}
}

// TestParallelBuildZeroWeightTuples: without the Yannakakis full reduce,
// dangling tuples get weight zero during the build — the parallel build must
// handle them identically.
func TestParallelBuildZeroWeightTuples(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		r.MustInsert(relation.Value(rng.Intn(50)), relation.Value(rng.Intn(30)))
		s.MustInsert(relation.Value(rng.Intn(30)+15), relation.Value(rng.Intn(50)))
	}
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	fj, err := reduce.BuildFullJoin(db, q, reduce.Options{SkipFullReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewWithOptions(fj, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewWithOptions(fj, forceParallel)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Count() != par.Count() {
		t.Fatalf("count diverged: %d vs %d", serial.Count(), par.Count())
	}
	for j := int64(0); j < serial.Count(); j++ {
		a, _ := serial.Access(j)
		b, err := par.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("Access(%d) diverged", j)
		}
	}
}

// TestAccessBatchSemantics pins the AccessBatch contract: order-preserving,
// duplicate-tolerant, empty-safe, and all-or-nothing on out-of-range input.
func TestAccessBatchSemantics(t *testing.T) {
	db, q, err := synth.Chain(synth.Config{Relations: 3, TuplesPerRelation: 1500, KeyDomain: 40, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	idx := buildIndex(t, db, q)
	n := idx.Count()
	if n < 10 {
		t.Skip("degenerate workload")
	}
	for _, workers := range []int{0, 1, 3} {
		// Order preservation + duplicates.
		js := []int64{n - 1, 0, 5, 5, n / 2, 0}
		got, err := idx.AccessBatch(js, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(js) {
			t.Fatalf("len %d want %d", len(got), len(js))
		}
		for i, j := range js {
			want, _ := idx.Access(j)
			if !got[i].Equal(want) {
				t.Fatalf("workers=%d batch[%d] (j=%d) = %v want %v", workers, i, j, got[i], want)
			}
		}
		if !got[2].Equal(got[3]) {
			t.Fatal("duplicate positions returned different answers")
		}
		// Empty batch.
		empty, err := idx.AccessBatch(nil, workers)
		if err != nil || len(empty) != 0 {
			t.Fatalf("empty batch: %v, %v", empty, err)
		}
		// Out of range: whole call fails, no partial results.
		for _, bad := range [][]int64{{-1}, {n}, {0, n, 1}, {1 << 62}} {
			if _, err := idx.AccessBatch(bad, workers); err != ErrOutOfBounds {
				t.Fatalf("AccessBatch(%v) err = %v, want ErrOutOfBounds", bad, err)
			}
		}
	}
	// A batch large enough to cross the fan-out threshold.
	rng := rand.New(rand.NewSource(10))
	big := make([]int64, 4*batchSerialThreshold)
	for i := range big {
		big[i] = rng.Int63n(n)
	}
	got, err := idx.AccessBatch(big, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range big {
		want, _ := idx.Access(j)
		if !got[i].Equal(want) {
			t.Fatalf("big batch diverged at %d", i)
		}
	}
}
