package parser

import (
	"testing"

	"repro/internal/relation"
)

// FuzzParseCQ exercises the parser on arbitrary byte strings: it must never
// panic, and anything it accepts must round-trip through the query's String
// form into an equivalent parse.
func FuzzParseCQ(f *testing.F) {
	seeds := []string{
		"Q(x, y) :- R(x, y), S(y, z).",
		"Q() :- R(x)",
		"Q(x) :- R(x, 42), S(x, 'paris')",
		"Q(a) :- R(a, a).",
		"% comment\nQ(x) :- R(x)",
		"Q(x) :- R(x,",
		"Q(x :- R(x)",
		"(((",
		"Q(x) :- R(-)",
		"Q(x) :- R('unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		dict := relation.NewDict()
		q, err := ParseCQ(input, dict)
		if err != nil {
			return
		}
		// Accepted input: the rendered form must parse again to the same
		// head and body shape. (Constants render numerically, which the
		// grammar accepts as numbers, so reparse may differ in dictionary
		// interning but not in structure.)
		q2, err := ParseCQ(q.String(), relation.NewDict())
		if err != nil {
			t.Fatalf("round trip failed for %q → %q: %v", input, q.String(), err)
		}
		if q2.Name != q.Name || len(q2.Head) != len(q.Head) || len(q2.Body) != len(q.Body) {
			t.Fatalf("round trip changed shape: %q vs %q", q.String(), q2.String())
		}
	})
}
