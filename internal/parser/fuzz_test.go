package parser

import (
	"testing"

	"repro/internal/relation"
)

// FuzzParseCQ exercises the parser on arbitrary byte strings: it must never
// panic, and anything it accepts must round-trip through the query's String
// form into an equivalent parse.
func FuzzParseCQ(f *testing.F) {
	seeds := []string{
		"Q(x, y) :- R(x, y), S(y, z).",
		"Q() :- R(x)",
		"Q(x) :- R(x, 42), S(x, 'paris')",
		"Q(a) :- R(a, a).",
		"% comment\nQ(x) :- R(x)",
		"Q(x) :- R(x,",
		"Q(x :- R(x)",
		"(((",
		"Q(x) :- R(-)",
		"Q(x) :- R('unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		dict := relation.NewDict()
		q, err := ParseCQ(input, dict)
		if err != nil {
			return
		}
		// Accepted input: the rendered form must parse again to the same
		// head and body shape. (Constants render numerically, which the
		// grammar accepts as numbers, so reparse may differ in dictionary
		// interning but not in structure.)
		q2, err := ParseCQ(q.String(), relation.NewDict())
		if err != nil {
			t.Fatalf("round trip failed for %q → %q: %v", input, q.String(), err)
		}
		if q2.Name != q.Name || len(q2.Head) != len(q.Head) || len(q2.Body) != len(q.Body) {
			t.Fatalf("round trip changed shape: %q vs %q", q.String(), q2.String())
		}
	})
}

// FuzzParseProgramRoundTrip is the multi-rule analogue: whatever ParseProgram
// accepts must survive a full parse → render → parse cycle rule by rule, with
// every rule's rendered form stable (render(parse(render(q))) == render(q)).
// This is the deeper fixed-point property: one cycle may normalize, two must
// not change anything.
func FuzzParseProgramRoundTrip(f *testing.F) {
	seeds := []string{
		"Q(x, y) :- R(x, y), S(y, z).",
		"Q(x) :- R(x).\nQ(x) :- S(x).",
		"A(x) :- R(x). B(y) :- S(y).",
		"Q(x) :- R(x, 'lyon').\nQ(x) :- T(x, x).",
		"% leading comment\nQ(x) :- R(x). % trailing\n",
		"Q(x) :- R(x). Q(x :- S(x).",
		"Q() :- R(x). Q() :- S(y).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		rules, err := ParseProgram(input, relation.NewDict())
		if err != nil {
			return
		}
		for i, q := range rules {
			rendered := q.String()
			q2, err := ParseCQ(rendered, relation.NewDict())
			if err != nil {
				t.Fatalf("rule %d: reparse of %q failed: %v", i, rendered, err)
			}
			if got := q2.String(); got != rendered {
				t.Fatalf("rule %d: render not a fixed point: %q vs %q", i, rendered, got)
			}
			if q2.Name != q.Name || len(q2.Head) != len(q.Head) || len(q2.Body) != len(q.Body) {
				t.Fatalf("rule %d: shape changed: %q vs %q", i, rendered, q2.String())
			}
			for ai, a := range q.Body {
				if q2.Body[ai].Relation != a.Relation || len(q2.Body[ai].Terms) != len(a.Terms) {
					t.Fatalf("rule %d atom %d: %v vs %v", i, ai, a, q2.Body[ai])
				}
			}
		}
	})
}
