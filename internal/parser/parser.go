// Package parser parses conjunctive queries in datalog-like rule syntax:
//
//	Q(x, y) :- R(x, y), S(y, 'paris'), T(x, 3).
//
// Lower- or upper-case identifiers are variables in argument positions and
// relation names in predicate positions; single-quoted strings are interned
// through the database dictionary; bare integers are numeric constants. A
// program is a sequence of rules separated by periods or newlines; rules
// sharing the same head predicate form a union (UCQ).
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/query"
	"repro/internal/relation"
)

type tokenKind int

const (
	tokIdent tokenKind = iota
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokImplies // :-
	tokPeriod
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	input string
	pos   int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.pos++
		case c == '%': // comment to end of line
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokPeriod, ".", start}, nil
	case c == ':':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '-' {
			l.pos += 2
			return token{tokImplies, ":-", start}, nil
		}
		return token{}, fmt.Errorf("parser: stray ':' at %d", start)
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.input) && l.input[l.pos] != '\'' {
			sb.WriteByte(l.input[l.pos])
			l.pos++
		}
		if l.pos >= len(l.input) {
			return token{}, fmt.Errorf("parser: unterminated string at %d", start)
		}
		l.pos++ // closing quote
		return token{tokString, sb.String(), start}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		l.pos++
		for l.pos < len(l.input) && l.input[l.pos] >= '0' && l.input[l.pos] <= '9' {
			l.pos++
		}
		text := l.input[start:l.pos]
		if text == "-" {
			return token{}, fmt.Errorf("parser: stray '-' at %d", start)
		}
		return token{tokNumber, text, start}, nil
	case isIdentStart(rune(c)):
		l.pos++
		for l.pos < len(l.input) && isIdentPart(rune(l.input[l.pos])) {
			l.pos++
		}
		return token{tokIdent, l.input[start:l.pos], start}, nil
	default:
		return token{}, fmt.Errorf("parser: unexpected character %q at %d", c, start)
	}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

type parser struct {
	lex  *lexer
	cur  token
	dict *relation.Dict
}

func newParser(input string, dict *relation.Dict) (*parser, error) {
	p := &parser{lex: &lexer{input: input}, dict: dict}
	return p, p.advance()
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.cur.kind != k {
		return token{}, fmt.Errorf("parser: expected %s at %d, got %q", what, p.cur.pos, p.cur.text)
	}
	t := p.cur
	return t, p.advance()
}

// parseRule parses one rule: Head(vars) :- Atom, Atom, ... [.]
func (p *parser) parseRule() (*query.CQ, error) {
	name, err := p.expect(tokIdent, "rule head name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var head []string
	for p.cur.kind != tokRParen {
		v, err := p.expect(tokIdent, "head variable")
		if err != nil {
			return nil, err
		}
		head = append(head, v.text)
		if p.cur.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	if _, err := p.expect(tokImplies, "':-'"); err != nil {
		return nil, err
	}
	var body []query.Atom
	for {
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		body = append(body, atom)
		if p.cur.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.cur.kind == tokPeriod {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return query.NewCQ(name.text, head, body)
}

func (p *parser) parseAtom() (query.Atom, error) {
	name, err := p.expect(tokIdent, "relation name")
	if err != nil {
		return query.Atom{}, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return query.Atom{}, err
	}
	var terms []query.Term
	for p.cur.kind != tokRParen {
		switch p.cur.kind {
		case tokIdent:
			terms = append(terms, query.V(p.cur.text))
		case tokNumber:
			n, err := strconv.ParseInt(p.cur.text, 10, 64)
			if err != nil {
				return query.Atom{}, fmt.Errorf("parser: bad number %q at %d", p.cur.text, p.cur.pos)
			}
			terms = append(terms, query.C(relation.Value(n)))
		case tokString:
			if p.dict == nil {
				return query.Atom{}, fmt.Errorf("parser: string constant at %d but no dictionary provided", p.cur.pos)
			}
			terms = append(terms, query.C(p.dict.Intern(p.cur.text)))
		default:
			return query.Atom{}, fmt.Errorf("parser: expected term at %d, got %q", p.cur.pos, p.cur.text)
		}
		if err := p.advance(); err != nil {
			return query.Atom{}, err
		}
		if p.cur.kind == tokComma {
			if err := p.advance(); err != nil {
				return query.Atom{}, err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return query.Atom{}, err
	}
	return query.NewAtom(name.text, terms...), nil
}

// ParseCQ parses a single rule. dict may be nil when the query contains no
// string constants.
func ParseCQ(input string, dict *relation.Dict) (*query.CQ, error) {
	p, err := newParser(input, dict)
	if err != nil {
		return nil, err
	}
	q, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("parser: trailing input at %d", p.cur.pos)
	}
	return q, nil
}

// ParseProgram parses a sequence of rules.
func ParseProgram(input string, dict *relation.Dict) ([]*query.CQ, error) {
	p, err := newParser(input, dict)
	if err != nil {
		return nil, err
	}
	var out []*query.CQ
	for p.cur.kind != tokEOF {
		q, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("parser: empty program")
	}
	return out, nil
}

// ParseUCQ parses a program whose rules all share the same head predicate
// and arity, returning them as a union.
func ParseUCQ(input string, dict *relation.Dict) (*query.UCQ, error) {
	rules, err := ParseProgram(input, dict)
	if err != nil {
		return nil, err
	}
	headName := rules[0].Name
	for i, q := range rules {
		if q.Name != headName {
			return nil, fmt.Errorf("parser: rule %d has head %q, want %q", i, q.Name, headName)
		}
		// Disambiguate disjunct names for diagnostics.
		q.Name = fmt.Sprintf("%s#%d", headName, i)
	}
	return query.NewUCQ(headName, rules...)
}
