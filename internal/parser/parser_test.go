package parser

import (
	"testing"

	"repro/internal/relation"
)

func TestParseSimpleRule(t *testing.T) {
	q, err := ParseCQ("Q(x, y) :- R(x, y), S(y, z).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Q" || len(q.Head) != 2 || len(q.Body) != 2 {
		t.Fatalf("parsed = %v", q)
	}
	if q.Body[0].Relation != "R" || q.Body[1].Relation != "S" {
		t.Fatal("relations wrong")
	}
	if q.Body[1].Terms[1].Var != "z" {
		t.Fatal("terms wrong")
	}
}

func TestParseWithoutTrailingPeriod(t *testing.T) {
	if _, err := ParseCQ("Q(x) :- R(x)", nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseNumericConstant(t *testing.T) {
	q, err := ParseCQ("Q(x) :- R(x, 42), S(x, -7)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Body[0].Terms[1].Const != 42 {
		t.Fatal("constant 42 wrong")
	}
	if q.Body[1].Terms[1].Const != -7 {
		t.Fatal("constant -7 wrong")
	}
}

func TestParseStringConstant(t *testing.T) {
	d := relation.NewDict()
	q, err := ParseCQ("Q(x) :- City(x, 'paris')", d)
	if err != nil {
		t.Fatal(err)
	}
	v := q.Body[0].Terms[1].Const
	if d.String(v) != "paris" {
		t.Fatalf("interned = %q", d.String(v))
	}
	if _, err := ParseCQ("Q(x) :- City(x, 'paris')", nil); err == nil {
		t.Fatal("string without dict accepted")
	}
}

func TestParseComments(t *testing.T) {
	src := `% the classic chain
Q(x, z) :- R(x, y), % join
           S(y, z).`
	q, err := ParseCQ(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Body) != 2 {
		t.Fatal("comment parsing broke the rule")
	}
}

func TestParseBooleanHead(t *testing.T) {
	q, err := ParseCQ("Q() :- R(x, y)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 0 {
		t.Fatal("boolean head wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Q(x)",
		"Q(x) :-",
		"Q(x) : R(x)",
		"Q(x) :- R(x",     // unclosed
		"Q(x) :- R('oops", // unterminated string (needs dict anyway)
		"Q(x) :- R(x) extra(y)",
		"Q(w) :- R(x)", // unsafe head
		"Q(x) :- R(x, -)",
		"1Q(x) :- R(x)",
	}
	for _, src := range bad {
		if _, err := ParseCQ(src, relation.NewDict()); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseProgramMultipleRules(t *testing.T) {
	rules, err := ParseProgram("A(x) :- R(x). B(y) :- S(y).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "A" || rules[1].Name != "B" {
		t.Fatalf("rules = %v", rules)
	}
	if _, err := ParseProgram("   ", nil); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestParseUCQ(t *testing.T) {
	u, err := ParseUCQ("Q(x) :- R(x). Q(x) :- S(x).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 2 || u.Name != "Q" {
		t.Fatalf("ucq = %v", u)
	}
	if u.Disjuncts[0].Name == u.Disjuncts[1].Name {
		t.Fatal("disjunct names not disambiguated")
	}
	if _, err := ParseUCQ("Q(x) :- R(x). P(x) :- S(x).", nil); err == nil {
		t.Fatal("mixed heads accepted")
	}
	if _, err := ParseUCQ("Q(x) :- R(x). Q(x, y) :- S(x, y).", nil); err == nil {
		t.Fatal("mixed arities accepted")
	}
}

func TestParseRepeatedVariable(t *testing.T) {
	q, err := ParseCQ("Q(x) :- R(x, x)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Body[0].Terms[0].Var != "x" || q.Body[0].Terms[1].Var != "x" {
		t.Fatal("repeated var lost")
	}
}
