// Package wire is the opt-in binary response format for the serving tier.
// Clients ask for it with "Accept: application/x-renum-bin" on /batch, /page
// and cursor draws; the server answers with a fixed 40-byte header,
// little-endian length-prefixed cells in row-major order, and a trailing
// CRC-32C (Castagnoli — the same checksum discipline internal/snapshot uses
// for on-disk sections). Compared to the JSON path it carries the same
// strings with no quoting, no escaping and no per-request encoder state, so
// both sides can stay allocation-free.
//
// Framing (all integers little-endian):
//
//	offset  size  field
//	     0     8  magic "RNMWIRE1"
//	     8     4  version (currently 1)
//	    12     4  flags (bit 0: FlagDone — cursor exhausted)
//	    16     4  arity (cells per row)
//	    20     4  reserved, must be zero
//	    24     8  rows
//	    32     8  aux (page responses: the echoed offset; otherwise 0)
//	    40     …  rows×arity cells, each: u32 length + raw bytes
//	  end-4     4  CRC-32C over everything before it
//
// Versioning policy: the magic pins the family, the version field the layout.
// Decoders reject any version they do not know (no silent best-effort reads);
// layout changes bump the version, and flag bits may be added without a bump
// because unknown flags are ignored by decoders.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// ContentType is the negotiated media type. A request whose Accept header
// lists it gets a binary response; everything else stays on JSON.
const ContentType = "application/x-renum-bin"

// Version is the layout version this package reads and writes.
const Version = 1

// FlagDone marks an exhausted cursor: the draw in this message is the last
// one and the server has closed the cursor.
const FlagDone = 1 << 0

const (
	headerSize = 40
	crcSize    = 4
)

var magic = [8]byte{'R', 'N', 'M', 'W', 'I', 'R', 'E', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrInvalid is the root of every decode error this package returns.
var ErrInvalid = fmt.Errorf("wire: invalid message")

// Header is the fixed-size frame prefix.
type Header struct {
	Flags uint32
	Arity uint32
	Rows  uint64
	Aux   uint64
}

// Done reports whether FlagDone is set.
func (h Header) Done() bool { return h.Flags&FlagDone != 0 }

// AppendHeader appends the 40-byte header for h to dst and returns the
// extended slice. The caller appends Rows×Arity cells with AppendCell and
// seals the message with Finish.
func AppendHeader(dst []byte, h Header) []byte {
	dst = append(dst, magic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, Version)
	dst = binary.LittleEndian.AppendUint32(dst, h.Flags)
	dst = binary.LittleEndian.AppendUint32(dst, h.Arity)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	dst = binary.LittleEndian.AppendUint64(dst, h.Rows)
	dst = binary.LittleEndian.AppendUint64(dst, h.Aux)
	return dst
}

// AppendCell appends one length-prefixed cell.
func AppendCell(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendCellBytes is AppendCell for raw bytes (callers rendering cell
// content into a scratch buffer avoid a string conversion).
func AppendCellBytes(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// Finish seals the message that started at dst[start:] by appending the
// CRC-32C over it, and returns the extended slice. start lets one buffer
// carry unrelated bytes (an HTTP head) before the frame.
func Finish(dst []byte, start int) []byte {
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], crcTable))
}

// Parse decodes a complete message, verifying the checksum before trusting
// any length field, and materializes the cells as strings. For an
// allocation-free walk use ParseFunc.
func Parse(data []byte) (Header, [][]string, error) {
	var rows [][]string
	h, err := ParseFunc(data, func(row, col int, val []byte) error {
		if col == 0 {
			rows = append(rows, make([]string, 0, 4))
		}
		rows[row] = append(rows[row], string(val))
		return nil
	})
	if err != nil {
		return Header{}, nil, err
	}
	return h, rows, nil
}

// ParseFunc decodes a complete message and invokes cell for every cell in
// row-major order. val aliases data — copy it to retain it. A non-nil error
// from cell aborts the walk and is returned verbatim.
func ParseFunc(data []byte, cell func(row, col int, val []byte) error) (Header, error) {
	if len(data) < headerSize+crcSize {
		return Header{}, fmt.Errorf("%w: %d bytes is shorter than an empty frame", ErrInvalid, len(data))
	}
	if string(data[:8]) != string(magic[:]) {
		return Header{}, fmt.Errorf("%w: bad magic", ErrInvalid)
	}
	body, crcBytes := data[:len(data)-crcSize], data[len(data)-crcSize:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(crcBytes); got != want {
		return Header{}, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrInvalid, got, want)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return Header{}, fmt.Errorf("%w: unsupported version %d (this decoder reads %d)", ErrInvalid, v, Version)
	}
	if r := binary.LittleEndian.Uint32(data[20:]); r != 0 {
		return Header{}, fmt.Errorf("%w: reserved field is %d, want 0", ErrInvalid, r)
	}
	h := Header{
		Flags: binary.LittleEndian.Uint32(data[12:]),
		Arity: binary.LittleEndian.Uint32(data[16:]),
		Rows:  binary.LittleEndian.Uint64(data[24:]),
		Aux:   binary.LittleEndian.Uint64(data[32:]),
	}
	cells, rest := h.Rows*uint64(h.Arity), body[headerSize:]
	// The checksum already passed, so lengths are what the encoder wrote;
	// these checks catch encoder bugs and hand-crafted frames, not line noise.
	for i := uint64(0); i < cells; i++ {
		if len(rest) < 4 {
			return Header{}, fmt.Errorf("%w: truncated cell %d of %d", ErrInvalid, i, cells)
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(len(rest)) < uint64(n) {
			return Header{}, fmt.Errorf("%w: cell %d claims %d bytes, %d remain", ErrInvalid, i, n, len(rest))
		}
		if cell != nil {
			if err := cell(int(i/uint64(h.Arity)), int(i%uint64(h.Arity)), rest[:n]); err != nil {
				return Header{}, err
			}
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return Header{}, fmt.Errorf("%w: %d trailing bytes after %d cells", ErrInvalid, len(rest), cells)
	}
	return h, nil
}
