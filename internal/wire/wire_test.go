package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

func encode(h Header, rows [][]string) []byte {
	b := AppendHeader(nil, h)
	for _, r := range rows {
		for _, c := range r {
			b = AppendCell(b, c)
		}
	}
	return Finish(b, 0)
}

func TestRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		h    Header
		rows [][]string
	}{
		{"empty", Header{Arity: 3}, nil},
		{"one row", Header{Arity: 2, Rows: 1}, [][]string{{"a", "bb"}}},
		{"done flag and aux", Header{Flags: FlagDone, Arity: 1, Rows: 2, Aux: 40}, [][]string{{""}, {"x"}}},
		{"binary-hostile cells", Header{Arity: 2, Rows: 2}, [][]string{
			{"with\x00nul", "ünïcødé"},
			{"quotes\"and\\slashes", "<html>&stuff "},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := encode(tc.h, tc.rows)
			h, rows, err := Parse(msg)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if h != tc.h {
				t.Fatalf("header round-trip: got %+v, want %+v", h, tc.h)
			}
			if len(rows) != len(tc.rows) {
				t.Fatalf("rows: got %d, want %d", len(rows), len(tc.rows))
			}
			for i := range rows {
				for j := range rows[i] {
					if rows[i][j] != tc.rows[i][j] {
						t.Fatalf("cell (%d,%d): got %q, want %q", i, j, rows[i][j], tc.rows[i][j])
					}
				}
			}
			if h.Done() != (tc.h.Flags&FlagDone != 0) {
				t.Fatalf("Done: got %v", h.Done())
			}
		})
	}
}

func TestFinishWithOffsetStart(t *testing.T) {
	// A frame appended after unrelated bytes (an HTTP head) must checksum
	// only the frame.
	prefix := []byte("HTTP/1.1 200 OK\r\n\r\n")
	b := append([]byte(nil), prefix...)
	start := len(b)
	b = AppendHeader(b, Header{Arity: 1, Rows: 1})
	b = AppendCell(b, "v")
	b = Finish(b, start)
	if _, _, err := Parse(b[start:]); err != nil {
		t.Fatalf("Parse after offset Finish: %v", err)
	}
}

func TestEveryBitFlipIsDetected(t *testing.T) {
	msg := encode(Header{Arity: 2, Rows: 2, Aux: 7}, [][]string{{"ab", "c"}, {"", "def"}})
	for i := range msg {
		for bit := 0; bit < 8; bit++ {
			corrupt := append([]byte(nil), msg...)
			corrupt[i] ^= 1 << bit
			if _, _, err := Parse(corrupt); err == nil {
				t.Fatalf("flip byte %d bit %d: Parse accepted corrupt frame", i, bit)
			} else if !errors.Is(err, ErrInvalid) {
				t.Fatalf("flip byte %d bit %d: error %v is not ErrInvalid", i, bit, err)
			}
		}
	}
}

func TestTruncationIsDetected(t *testing.T) {
	msg := encode(Header{Arity: 1, Rows: 3}, [][]string{{"aa"}, {"bb"}, {"cc"}})
	for n := 0; n < len(msg); n++ {
		if _, _, err := Parse(msg[:n]); err == nil {
			t.Fatalf("Parse accepted %d-byte truncation of %d-byte frame", n, len(msg))
		}
	}
}

func TestUnsupportedVersion(t *testing.T) {
	msg := encode(Header{Arity: 1, Rows: 1}, [][]string{{"x"}})
	binary.LittleEndian.PutUint32(msg[8:], Version+1)
	// Re-seal so only the version is wrong, not the checksum.
	msg = Finish(msg[:len(msg)-4], 0)
	_, _, err := Parse(msg)
	if err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid for unknown version, got %v", err)
	}
}

func TestUnknownFlagsAreIgnored(t *testing.T) {
	msg := encode(Header{Flags: 1 << 7, Arity: 1, Rows: 1}, [][]string{{"x"}})
	h, _, err := Parse(msg)
	if err != nil {
		t.Fatalf("unknown flag bits must parse: %v", err)
	}
	if h.Flags != 1<<7 || h.Done() {
		t.Fatalf("flags: got %b", h.Flags)
	}
}

func TestCellCallbackErrorAborts(t *testing.T) {
	msg := encode(Header{Arity: 1, Rows: 2}, [][]string{{"a"}, {"b"}})
	boom := fmt.Errorf("boom")
	calls := 0
	_, err := ParseFunc(msg, func(row, col int, val []byte) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("want boom after 1 call, got err=%v calls=%d", err, calls)
	}
}

func TestParseFuncZeroAlloc(t *testing.T) {
	msg := encode(Header{Arity: 2, Rows: 4}, [][]string{
		{"aa", "b"}, {"c", "dd"}, {"e", "f"}, {"gg", "hh"},
	})
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		_, err := ParseFunc(msg, func(row, col int, val []byte) error {
			sink += len(val)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseFunc allocated %v per run, want 0", allocs)
	}
}
