package sample

import (
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
)

func prepared(t *testing.T, seed int64, n int) (*access.Index, *relation.Database, *query.CQ) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	for i := 0; i < n; i++ {
		r.MustInsert(relation.Value(rng.Intn(12)), relation.Value(rng.Intn(4)))
		s.MustInsert(relation.Value(rng.Intn(4)), relation.Value(rng.Intn(12)))
	}
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	fj, err := reduce.BuildFullJoin(db, q, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := access.New(fj)
	if err != nil {
		t.Fatal(err)
	}
	return idx, db, q
}

func TestSamplerEnumeratesAll(t *testing.T) {
	for _, m := range Methods {
		idx, db, q := prepared(t, 4, 30)
		s := New(idx, m, rand.New(rand.NewSource(9)))
		want, _ := naive.Evaluate(db, q)
		seen := make(map[string]bool)
		var got []relation.Tuple
		for {
			tup, ok := s.Next()
			if !ok {
				break
			}
			if seen[tup.Key()] {
				t.Fatalf("%v emitted duplicate", m)
			}
			seen[tup.Key()] = true
			got = append(got, tup)
		}
		if !naive.SameAnswerSet(got, want) {
			t.Fatalf("%v: emitted %d answers, oracle %d", m, len(got), len(want))
		}
		if s.Emitted() != int64(len(want)) {
			t.Fatalf("%v: Emitted = %d", m, s.Emitted())
		}
		// Coupon collector: trials must exceed answers when there are >1.
		if len(want) > 1 && s.Trials <= int64(len(want)) && m == EW {
			t.Logf("%v: suspiciously few trials (%d for %d answers)", m, s.Trials, len(want))
		}
	}
}

func TestEWNeverRejectsTrials(t *testing.T) {
	idx, _, _ := prepared(t, 5, 40)
	s := New(idx, EW, rand.New(rand.NewSource(3)))
	for i := 0; i < 200; i++ {
		if _, ok := s.Sample(); !ok {
			t.Fatal("EW sample failed")
		}
	}
	if s.TrialRejections != 0 {
		t.Fatalf("EW had %d trial rejections", s.TrialRejections)
	}
}

func TestRejectingMethodsCountRejections(t *testing.T) {
	idx, _, _ := prepared(t, 6, 60)
	for _, m := range []Method{EO, OE, RS} {
		s := New(idx, m, rand.New(rand.NewSource(7)))
		for i := 0; i < 50; i++ {
			s.Sample()
		}
		t.Logf("%v: %d trials, %d rejections", m, s.Trials, s.TrialRejections)
	}
}

func TestMaxTrialsPerDraw(t *testing.T) {
	idx, _, _ := prepared(t, 8, 60)
	s := New(idx, RS, rand.New(rand.NewSource(11)))
	s.MaxTrialsPerDraw = 1
	// With a single trial per draw, RS will usually fail on a join of this
	// selectivity; we only require that it terminates and reports !ok
	// eventually without looping forever.
	fails := 0
	for i := 0; i < 100; i++ {
		if _, ok := s.Sample(); !ok {
			fails++
		}
	}
	if fails == 0 {
		t.Log("RS never failed with budget 1 (very dense join); acceptable")
	}
}

func TestSamplerEmptyAnswerSet(t *testing.T) {
	db := relation.NewDatabase()
	db.MustCreate("R", "a", "b")
	db.MustCreate("S", "b", "c")
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	fj, err := reduce.BuildFullJoin(db, q, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := access.New(fj)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods {
		s := New(idx, m, rand.New(rand.NewSource(1)))
		if _, ok := s.Sample(); ok {
			t.Fatalf("%v sampled from empty set", m)
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("%v enumerated from empty set", m)
		}
	}
}

func TestMethodString(t *testing.T) {
	if EW.String() != "EW" || EO.String() != "EO" || OE.String() != "OE" || RS.String() != "RS" {
		t.Fatal("method names wrong")
	}
	if Method(42).String() == "" {
		t.Fatal("unknown method name empty")
	}
}
