// Package sample packages the baseline of Section 6: the uniform
// with-replacement samplers of Zhao et al. (SIGMOD 2018), naively turned into
// enumerators-without-repetition by rejecting previously seen answers — the
// comparison point for REnum(CQ) in Figures 1–3 and 6–8.
//
// The four initializations (see internal/access/samplers.go for the exact
// sampling schemes and their uniformity proofs):
//
//	EW — exact weights, never rejects a trial;
//	EO — Olken-style rejection at the root of the join tree;
//	OE — wander-join walk with end rejection;
//	RS — fully naive independent tuple picks.
package sample

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/relation"
)

// Method selects a sampler initialization.
type Method int

const (
	EW Method = iota
	EO
	OE
	RS
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case EW:
		return "EW"
	case EO:
		return "EO"
	case OE:
		return "OE"
	case RS:
		return "RS"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists all baseline methods.
var Methods = []Method{EW, EO, OE, RS}

// Sampler draws uniform answers with replacement from a prepared index and
// enumerates distinct answers by duplicate elimination.
type Sampler struct {
	idx    *access.Index
	method Method
	rng    *rand.Rand

	seen map[string]bool

	// Trials counts sampling trials (including rejections and duplicates).
	Trials int64
	// Duplicates counts draws discarded because the answer was seen before.
	Duplicates int64
	// TrialRejections counts trials rejected by the sampler itself
	// (always 0 for EW).
	TrialRejections int64
	// MaxTrialsPerDraw bounds the number of trials a single Draw may burn
	// before giving up (0 = unlimited). Guards RS on large instances.
	MaxTrialsPerDraw int64
}

// New returns a Sampler over the prepared index.
func New(idx *access.Index, method Method, rng *rand.Rand) *Sampler {
	return &Sampler{idx: idx, method: method, rng: rng, seen: make(map[string]bool)}
}

// trial draws one with-replacement sample (possibly rejecting).
func (s *Sampler) trial() (relation.Tuple, bool) {
	switch s.method {
	case EW:
		return s.idx.SampleEW(s.rng)
	case EO:
		return s.idx.SampleEOTrial(s.rng)
	case OE:
		return s.idx.SampleOETrial(s.rng)
	case RS:
		return s.idx.SampleRSTrial(s.rng)
	default:
		return nil, false
	}
}

// Sample draws one uniform answer with replacement (retrying internal
// rejections). ok is false on an empty answer set or when MaxTrialsPerDraw is
// exhausted.
func (s *Sampler) Sample() (relation.Tuple, bool) {
	if s.idx.Count() == 0 {
		return nil, false
	}
	for n := int64(0); s.MaxTrialsPerDraw == 0 || n < s.MaxTrialsPerDraw; n++ {
		s.Trials++
		t, ok := s.trial()
		if ok {
			return t, true
		}
		s.TrialRejections++
	}
	return nil, false
}

// Next returns the next previously-unseen answer, emulating an enumeration
// without repetitions by rejecting duplicates (the paper's transformation of
// the Zhao et al. sampler). ok is false when all answers have been emitted or
// the trial budget is exhausted.
func (s *Sampler) Next() (relation.Tuple, bool) {
	if int64(len(s.seen)) >= s.idx.Count() {
		return nil, false
	}
	for {
		t, ok := s.Sample()
		if !ok {
			return nil, false
		}
		k := t.Key()
		if s.seen[k] {
			s.Duplicates++
			continue
		}
		s.seen[k] = true
		return t, true
	}
}

// Emitted returns how many distinct answers have been produced so far.
func (s *Sampler) Emitted() int64 { return int64(len(s.seen)) }
