// Package synth generates synthetic join workloads with controllable skew,
// complementing the TPC-H substrate: the ablation and robustness studies
// need data where join fan-outs follow a Zipf law, because that is the
// regime separating the exact-weight sampler (EW) from the rejection-based
// baselines (EO/OE) and stressing Algorithm 5's rejection bound.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/query"
	"repro/internal/relation"
)

// Config describes a k-ary chain join R1(x0,x1) ⋈ R2(x1,x2) ⋈ ... with
// Zipf-distributed join keys.
type Config struct {
	// Relations is the chain length (k ≥ 1).
	Relations int
	// TuplesPerRelation is the cardinality of each relation.
	TuplesPerRelation int
	// KeyDomain is the number of distinct join-key values per junction.
	KeyDomain int
	// SkewS is the Zipf s parameter (> 1); higher = more skew. Zero means
	// uniform keys.
	SkewS float64
	// Seed makes generation deterministic.
	Seed int64
}

// Chain generates the database and the full chain CQ
// Q(x0..xk) :- R1(x0,x1), ..., Rk(x(k-1),xk).
func Chain(cfg Config) (*relation.Database, *query.CQ, error) {
	if cfg.Relations < 1 {
		return nil, nil, fmt.Errorf("synth: need at least one relation")
	}
	if cfg.TuplesPerRelation < 1 || cfg.KeyDomain < 1 {
		return nil, nil, fmt.Errorf("synth: cardinality and key domain must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var draw func() relation.Value
	if cfg.SkewS > 1 {
		z := rand.NewZipf(rng, cfg.SkewS, 1, uint64(cfg.KeyDomain-1))
		draw = func() relation.Value { return relation.Value(z.Uint64()) }
	} else {
		draw = func() relation.Value { return relation.Value(rng.Intn(cfg.KeyDomain)) }
	}

	db := relation.NewDatabase()
	var body []query.Atom
	head := []string{"x0"}
	for i := 1; i <= cfg.Relations; i++ {
		name := fmt.Sprintf("R%d", i)
		lo := fmt.Sprintf("x%d", i-1)
		hi := fmt.Sprintf("x%d", i)
		r := db.MustCreate(name, name+"_a", name+"_b")
		for t := 0; t < cfg.TuplesPerRelation; t++ {
			r.MustInsert(draw(), draw())
		}
		body = append(body, query.NewAtom(name, query.V(lo), query.V(hi)))
		head = append(head, hi)
	}
	q, err := query.NewCQ(fmt.Sprintf("chain%d", cfg.Relations), head, body)
	if err != nil {
		return nil, nil, err
	}
	return db, q, nil
}

// Star generates a star join Q(c, l1..lk) :- R1(c,l1), ..., Rk(c,lk) with the
// center key Zipf-distributed — the worst case for per-bucket weight skew.
func Star(cfg Config) (*relation.Database, *query.CQ, error) {
	if cfg.Relations < 1 {
		return nil, nil, fmt.Errorf("synth: need at least one relation")
	}
	if cfg.TuplesPerRelation < 1 || cfg.KeyDomain < 1 {
		return nil, nil, fmt.Errorf("synth: cardinality and key domain must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var center func() relation.Value
	if cfg.SkewS > 1 {
		z := rand.NewZipf(rng, cfg.SkewS, 1, uint64(cfg.KeyDomain-1))
		center = func() relation.Value { return relation.Value(z.Uint64()) }
	} else {
		center = func() relation.Value { return relation.Value(rng.Intn(cfg.KeyDomain)) }
	}

	db := relation.NewDatabase()
	var body []query.Atom
	head := []string{"c"}
	for i := 1; i <= cfg.Relations; i++ {
		name := fmt.Sprintf("S%d", i)
		leaf := fmt.Sprintf("l%d", i)
		r := db.MustCreate(name, name+"_c", name+"_l")
		for t := 0; t < cfg.TuplesPerRelation; t++ {
			r.MustInsert(center(), relation.Value(rng.Intn(1<<30)))
		}
		body = append(body, query.NewAtom(name, query.V("c"), query.V(leaf)))
		head = append(head, leaf)
	}
	q, err := query.NewCQ(fmt.Sprintf("star%d", cfg.Relations), head, body)
	if err != nil {
		return nil, nil, err
	}
	return db, q, nil
}
