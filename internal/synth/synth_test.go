package synth

import (
	"testing"

	"repro/internal/cqenum"
	"repro/internal/hypergraph"
	"repro/internal/naive"
	"repro/internal/reduce"
	"repro/internal/relation"
)

func TestChainGeneratesValidWorkload(t *testing.T) {
	db, q, err := Chain(Config{Relations: 3, TuplesPerRelation: 50, KeyDomain: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hypergraph.IsFreeConnex(q) {
		t.Fatal("chain query not free-connex")
	}
	c, err := cqenum.Prepare(db, q, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.Evaluate(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != int64(len(want)) {
		t.Fatalf("Count = %d, oracle %d", c.Count(), len(want))
	}
}

func TestChainDeterministic(t *testing.T) {
	db1, _, _ := Chain(Config{Relations: 2, TuplesPerRelation: 30, KeyDomain: 5, Seed: 7})
	db2, _, _ := Chain(Config{Relations: 2, TuplesPerRelation: 30, KeyDomain: 5, Seed: 7})
	r1, _ := db1.Relation("R1")
	r2, _ := db2.Relation("R1")
	for i := 0; i < r1.Len(); i++ {
		if !r1.Tuple(i).Equal(r2.Tuple(i)) {
			t.Fatal("nondeterministic generation")
		}
	}
}

func TestChainSkewActuallySkews(t *testing.T) {
	uniform, _, _ := Chain(Config{Relations: 1, TuplesPerRelation: 5000, KeyDomain: 100, Seed: 3})
	skewed, _, _ := Chain(Config{Relations: 1, TuplesPerRelation: 5000, KeyDomain: 100, Seed: 3, SkewS: 2.0})
	maxFreq := func(db *relation.Database) int {
		r, _ := db.Relation("R1")
		counts := map[relation.Value]int{}
		for _, tu := range r.Tuples() {
			counts[tu[0]]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return max
	}
	// Note: MustInsert dedupes, so counts are of distinct tuples; skew still
	// shows through the second attribute's freedom.
	if maxFreq(skewed) <= maxFreq(uniform) {
		t.Fatalf("skewed max frequency %d not above uniform %d", maxFreq(skewed), maxFreq(uniform))
	}
}

func TestStarGeneratesValidWorkload(t *testing.T) {
	db, q, err := Star(Config{Relations: 3, TuplesPerRelation: 40, KeyDomain: 6, Seed: 2, SkewS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !hypergraph.IsFreeConnex(q) {
		t.Fatal("star query not free-connex")
	}
	c, err := cqenum.Prepare(db, q, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.Evaluate(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != int64(len(want)) {
		t.Fatalf("Count = %d, oracle %d", c.Count(), len(want))
	}
	if c.Count() == 0 {
		t.Fatal("star produced no answers; test vacuous")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := Chain(Config{Relations: 0, TuplesPerRelation: 1, KeyDomain: 1}); err == nil {
		t.Fatal("zero relations accepted")
	}
	if _, _, err := Chain(Config{Relations: 1, TuplesPerRelation: 0, KeyDomain: 1}); err == nil {
		t.Fatal("zero tuples accepted")
	}
	if _, _, err := Star(Config{Relations: 0, TuplesPerRelation: 1, KeyDomain: 1}); err == nil {
		t.Fatal("zero relations accepted (star)")
	}
	if _, _, err := Star(Config{Relations: 1, TuplesPerRelation: 1, KeyDomain: 0}); err == nil {
		t.Fatal("zero domain accepted (star)")
	}
}
