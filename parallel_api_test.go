package renum

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/stats"
)

// fixtureDB builds a small 2-chain with a few dozen answers — big enough for
// chi-square power, small enough that trials stay cheap.
func fixtureDB(t testing.TB) (*Database, *CQ) {
	db := NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 120; i++ {
		r.MustInsert(Value(rng.Intn(12)), Value(rng.Intn(5)))
		s.MustInsert(Value(rng.Intn(5)), Value(rng.Intn(12)))
	}
	q := MustCQ("q", []string{"a", "b", "c"},
		NewAtom("R", V("a"), V("b")),
		NewAtom("S", V("b"), V("c")))
	return db, q
}

// TestAccessBatchEquivalentToAccess: for random permutations of [0, n) (and
// random multisets with duplicates), AccessBatch must return exactly the
// per-position Access answers, in order.
func TestAccessBatchEquivalentToAccess(t *testing.T) {
	db, q := fixtureDB(t)
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	n := ra.Count()
	if n == 0 {
		t.Fatal("fixture produced no answers")
	}
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		var js []int64
		if trial%2 == 0 {
			for _, j := range rng.Perm(int(n)) {
				js = append(js, int64(j))
			}
		} else {
			for i := 0; i < 500; i++ {
				js = append(js, rng.Int63n(n))
			}
		}
		got, err := ra.AccessBatch(js, trial%4) // exercise auto and explicit fan-out
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range js {
			want, err := ra.Access(j)
			if err != nil {
				t.Fatal(err)
			}
			if !got[i].Equal(want) {
				t.Fatalf("trial %d: batch[%d] (j=%d) = %v want %v", trial, i, j, got[i], want)
			}
		}
	}
}

// TestPageParallelEquivalentToPage: same rows, same order, for page shapes
// crossing the result boundaries.
func TestPageParallelEquivalentToPage(t *testing.T) {
	db, q := fixtureDB(t)
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	n := ra.Count()
	cases := []struct{ offset, limit int64 }{
		{0, 0}, {0, 10}, {0, n}, {n / 2, n}, {n - 1, 5}, {n, 10}, {n + 5, 1},
		// offset+limit would overflow int64: must clamp, not panic.
		{5, math.MaxInt64}, {0, math.MaxInt64},
	}
	for _, tc := range cases {
		want, err := ra.Page(tc.offset, tc.limit)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 3} {
			got, err := ra.PageParallel(tc.offset, tc.limit, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("page(%d,%d,w=%d): %d rows, want %d", tc.offset, tc.limit, workers, len(got), len(want))
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("page(%d,%d,w=%d) row %d diverged", tc.offset, tc.limit, workers, i)
				}
			}
		}
	}
	if _, err := ra.PageParallel(-1, 2, 0); err != ErrOutOfBounds {
		t.Fatalf("negative offset: %v", err)
	}
}

// TestSampleNMatchesSampleK: SampleN draws its positions from the same lazy
// Fisher–Yates shuffle as SampleK, so for equal seeds the outputs must be
// identical — which transfers SampleK's uniform-without-replacement
// distribution to SampleN exactly.
func TestSampleNMatchesSampleK(t *testing.T) {
	db, q := fixtureDB(t)
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	n := ra.Count()
	for _, k := range []int64{0, 1, 7, n, n + 50} {
		want, err := ra.SampleK(k, rand.New(rand.NewSource(63)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ra.SampleN(k, rand.New(rand.NewSource(63)))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(got)) != int64(len(want)) {
			t.Fatalf("k=%d: %d answers, want %d", k, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("k=%d position %d diverged", k, i)
			}
		}
		seen := map[string]bool{}
		for _, a := range got {
			key := a.Key()
			if seen[key] {
				t.Fatalf("k=%d: duplicate answer %v", k, a)
			}
			seen[key] = true
		}
	}
}

// chiSquareLimit mirrors internal/exp's ~6σ acceptance bound.
func chiSquareLimit(df int) float64 { return float64(df) + 6*math.Sqrt(2*float64(df)) }

// TestSampleNFirstAnswerUniform: the first answer of SampleN must be uniform
// over the answer set — the statistical guarantee that separates the
// paper's algorithms from heuristic shufflers, now checked on the batched
// parallel path.
func TestSampleNFirstAnswerUniform(t *testing.T) {
	db, q := fixtureDB(t)
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	n := ra.Count()
	trials := int(40 * n)
	if trials < 2000 {
		trials = 2000
	}
	rng := rand.New(rand.NewSource(64))
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		ts, err := ra.SampleN(3, rng)
		if err != nil || len(ts) == 0 {
			t.Fatal("sample failed")
		}
		j, ok := ra.InvertedAccess(ts[0])
		if !ok {
			t.Fatalf("sampled a non-answer: %v", ts[0])
		}
		counts[j]++
	}
	stat, df := stats.ChiSquareUniform(counts)
	if limit := chiSquareLimit(df); stat > limit {
		t.Fatalf("SampleN first answer not uniform: chi2=%.1f limit=%.1f (df=%d)", stat, limit, df)
	}
}

// TestPermutationNextNUniformAndComplete: the batched random-order
// enumerator must (a) emit every answer exactly once per permutation, and
// (b) have a uniform first answer across permutations — i.e. match the
// serial enumerator's distribution.
func TestPermutationNextNUniformAndComplete(t *testing.T) {
	db, q := fixtureDB(t)
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	n := ra.Count()
	rng := rand.New(rand.NewSource(65))

	// Completeness: batched drain covers each answer exactly once.
	p := ra.Permute(rng)
	seen := make([]int, n)
	for {
		chunk := p.NextN(13)
		if len(chunk) == 0 {
			break
		}
		for _, a := range chunk {
			j, ok := ra.InvertedAccess(a)
			if !ok {
				t.Fatalf("emitted a non-answer: %v", a)
			}
			seen[j]++
		}
	}
	for j, c := range seen {
		if c != 1 {
			t.Fatalf("answer %d emitted %d times", j, c)
		}
	}

	// Uniformity of the first batched answer.
	trials := int(40 * n)
	if trials < 2000 {
		trials = 2000
	}
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		chunk := ra.Permute(rng).NextN(1)
		if len(chunk) != 1 {
			t.Fatal("empty first batch")
		}
		j, _ := ra.InvertedAccess(chunk[0])
		counts[j]++
	}
	stat, df := stats.ChiSquareUniform(counts)
	if limit := chiSquareLimit(df); stat > limit {
		t.Fatalf("NextN first answer not uniform: chi2=%.1f limit=%.1f (df=%d)", stat, limit, df)
	}
}

// TestDrainEverythingRequests: "give me everything" values of k must drain
// what exists instead of attempting a k-sized allocation.
func TestDrainEverythingRequests(t *testing.T) {
	db, q := fixtureDB(t)
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	n := ra.Count()
	if got := ra.Permute(rand.New(rand.NewSource(66))).NextN(math.MaxInt64); int64(len(got)) != n {
		t.Fatalf("NextN(MaxInt64) drained %d of %d", len(got), n)
	}
	if got, err := ra.SampleN(math.MaxInt64, rand.New(rand.NewSource(66))); err != nil || int64(len(got)) != n {
		t.Fatalf("SampleN(MaxInt64) = %d answers, err %v", len(got), err)
	}

	dq := MustCQ("dq", []string{"a", "b"}, NewAtom("R", V("a"), V("b")))
	dyn, err := NewDynamicAccess(db, dq)
	if err != nil {
		t.Fatal(err)
	}
	// With-replacement sampling: a huge k must not pre-allocate k slots.
	// 100k draws is enough to prove the capacity clamp without minutes of
	// sampling.
	if got, err := dyn.SampleN(100_000, rand.New(rand.NewSource(67))); err != nil || len(got) != 100_000 {
		t.Fatalf("dynamic SampleN drew %d, err %v", len(got), err)
	}
}

// TestSharedRandomAccessHammer drives the public API from many goroutines
// sharing one RandomAccess (run with -race): the top-level mirror of the
// internal hammers.
func TestSharedRandomAccessHammer(t *testing.T) {
	db, q := fixtureDB(t)
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	n := ra.Count()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					if _, err := ra.Access(rng.Int63n(n)); err != nil {
						errs <- err
						return
					}
				case 1:
					js := make([]int64, 32)
					for k := range js {
						js[k] = rng.Int63n(n)
					}
					if _, err := ra.AccessBatch(js, 0); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := ra.SampleN(8, rng); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, err := ra.PageParallel(rng.Int63n(n), 16, 2); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// fuzzFixture is built once: fuzzing re-enters the function per input.
var (
	fuzzOnce sync.Once
	fuzzRA   *RandomAccess
)

func fuzzFixture(t testing.TB) *RandomAccess {
	fuzzOnce.Do(func() {
		db, q := fixtureDB(t)
		ra, err := NewRandomAccess(db, q)
		if err != nil {
			t.Fatal(err)
		}
		fuzzRA = ra
	})
	return fuzzRA
}

// FuzzAccessBatch decodes arbitrary bytes into a position slice — mixing
// in-range, out-of-range, negative, duplicate and empty shapes — and checks
// the AccessBatch contract against serial Access: the call fails with
// ErrOutOfBounds iff some position is out of range, and otherwise returns
// exactly the per-position answers.
func FuzzAccessBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0x80, 2, 0, 0, 0, 0, 0, 0, 0x80})
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<62))
	f.Fuzz(func(t *testing.T, data []byte) {
		ra := fuzzFixture(t)
		n := ra.Count()
		var js []int64
		for len(data) >= 8 {
			raw := int64(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			// High bit set: fold into range so the success path is exercised
			// about half the time; otherwise keep the raw (usually wild) value.
			if raw < 0 && raw != math.MinInt64 {
				js = append(js, (-raw)%n)
			} else {
				js = append(js, raw)
			}
		}
		wantErr := false
		for _, j := range js {
			if j < 0 || j >= n {
				wantErr = true
				break
			}
		}
		got, err := ra.AccessBatch(js, 0)
		if wantErr {
			if err != ErrOutOfBounds {
				t.Fatalf("js=%v: err=%v, want ErrOutOfBounds", js, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("js=%v: unexpected error %v", js, err)
		}
		if len(got) != len(js) {
			t.Fatalf("js=%v: %d answers", js, len(got))
		}
		for i, j := range js {
			want, err := ra.Access(j)
			if err != nil {
				t.Fatal(err)
			}
			if !got[i].Equal(want) {
				t.Fatalf("js=%v: position %d diverged", js, i)
			}
		}
	})
}
