# Build the renum CLI (snapshot compiler) and renumd (daemon / shard / router)
# as static binaries, then ship them in a minimal runtime image whose
# healthcheck is the daemon's own /readyz — a shard daemon reports ready once
# its slice is built or restored, a router only once the whole fleet has
# scraped ready, so orchestration ordering falls out of the probes.
#
# The same image serves every role; deploy/compose.yml picks the role per
# service via command-line flags (see that file for the 1-router + N-shard
# topology booted from a shared snapshot dir).
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -o /out/renum ./cmd/renum \
 && CGO_ENABLED=0 go build -trimpath -o /out/renumd ./cmd/renumd

FROM alpine:3.20
COPY --from=build /out/renum /out/renumd /usr/local/bin/
# Demo fixtures so the compose quick-start works out of the box; production
# deployments mount their own tables or a prebuilt snapshot volume instead.
COPY internal/load/testdata /app/fixtures
EXPOSE 8080
# busybox wget fails on non-2xx, so a router still scraping its shards (503)
# or a shard still building its slice reads as unhealthy until it isn't.
HEALTHCHECK --interval=5s --timeout=2s --retries=12 \
  CMD wget -q -O /dev/null http://127.0.0.1:8080/readyz || exit 1
ENTRYPOINT ["renumd"]
CMD ["-addr", ":8080"]
