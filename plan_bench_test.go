package renum

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/tpchq"
)

// BenchmarkPlanSearch prices the planner itself: one op is a full candidate
// enumeration + costing run over a paper query (statistics collection
// included, as Open pays it). The committed BENCH_plan.json tracks these so
// a planner change that blows up search time — it runs inside every
// admin-triggered build — is caught in review, not in production boots.
func BenchmarkPlanSearch(b *testing.B) {
	d := db(b)
	for _, q := range tpchq.CQs() {
		q := q
		b.Run(q.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := plan.ChooseCQ(d, q, plan.ModeCost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, u := range tpchq.UCQs() {
		u := u
		b.Run(u.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := plan.ChooseUCQ(d, u, plan.ModeCost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOpenPlanned prices what the planner adds to (or saves from) a
// full Open: the same query built in cost mode and with the planner off.
func BenchmarkOpenPlanned(b *testing.B) {
	d := db(b)
	q := tpchq.CQs()[2] // Q3: a mid-size join the planner actually reorders on
	for _, arm := range []struct {
		name string
		opts []Option
	}{
		{"Cost", nil},
		{"Off", []Option{WithPlanner(PlannerOff)}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Open(d, q, arm.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
