package renum

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/mcucq"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/synth"
)

// The golden file internal/access/testdata/golden_order.txt was recorded
// from the pre-columnar (map-of-string-keyed-buckets) implementation: for
// each seeded query it holds "# query <name> count <n>" followed by every
// answer of Access(0..n-1) as comma-separated values, plus one hash-only
// entry "# hash <name> count <n> sha256 <hex>" for a larger instance.
//
// The enumeration order of the index is a public, load-bearing contract —
// mc-UCQ compatibility (Section 5.2) and inverted access both depend on it —
// so any representation change must reproduce the sequence byte for byte.
// These tests rebuild the same databases and queries (same seeds, same
// pipeline) and compare against the recording.
const goldenOrderFile = "internal/access/testdata/golden_order.txt"

// goldenAccessor abstracts the two index kinds enumerated in the golden file.
type goldenAccessor interface {
	Count() int64
	Access(j int64) (relation.Tuple, error)
}

// goldenIndexes rebuilds, in golden-file order, the exact query instances the
// recording was made from.
func goldenIndexes(t *testing.T) map[string]goldenAccessor {
	t.Helper()
	out := make(map[string]goldenAccessor)

	build := func(db *relation.Database, q *query.CQ, opts reduce.Options) goldenAccessor {
		fj, err := reduce.BuildFullJoin(db, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := access.New(fj)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}

	// Skewed star join (multi-child node, weight skew).
	db, q, err := synth.Star(synth.Config{Relations: 3, TuplesPerRelation: 60, KeyDomain: 25, SkewS: 1.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	out[q.Name] = build(db, q, reduce.Options{})

	// Chain join under canonical (sorted) order.
	db2, q2, err := synth.Chain(synth.Config{Relations: 3, TuplesPerRelation: 150, KeyDomain: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	out[q2.Name] = build(db2, q2, reduce.Options{CanonicalOrder: true})

	// Chain with projection (existential vars, GYO elimination path).
	q3, err := query.NewCQ("proj", []string{"x0", "x1"}, q2.Body)
	if err != nil {
		t.Fatal(err)
	}
	out[q3.Name] = build(db2, q3, reduce.Options{})

	// mc-UCQ access over filtered variants of one relation.
	db4 := relation.NewDatabase()
	nat := db4.MustCreate("N", "a", "b")
	for i := 0; i < 30; i++ {
		for j := 0; j < 3; j++ {
			nat.MustInsert(relation.Value(i), relation.Value((i+j)%4))
		}
	}
	db4.Add(nat.Filter("N0", func(tu relation.Tuple) bool { return tu[1] <= 1 }))
	db4.Add(nat.Filter("N1", func(tu relation.Tuple) bool { return tu[1] >= 1 }))
	qa := query.MustCQ("QA", []string{"a", "b"}, query.NewAtom("N0", query.V("a"), query.V("b")))
	qb := query.MustCQ("QB", []string{"a", "b"}, query.NewAtom("N1", query.V("a"), query.V("b")))
	u, err := query.NewUCQ("U", qa, qb)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mcucq.New(db4, u, mcucq.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	out[u.Name] = m

	return out
}

func formatAnswer(buf []byte, tu relation.Tuple) []byte {
	buf = buf[:0]
	for i, v := range tu {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	return buf
}

// TestGoldenEnumerationOrder replays every recorded sequence answer by
// answer: the full enumeration of each index must equal the recording
// exactly — same count, same answers, same positions.
func TestGoldenEnumerationOrder(t *testing.T) {
	f, err := os.Open(goldenOrderFile)
	if err != nil {
		t.Fatalf("golden file missing (regenerate against the previous implementation): %v", err)
	}
	defer f.Close()

	indexes := goldenIndexes(t)

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		cur      goldenAccessor
		curName  string
		next     int64
		buf      []byte
		lineNo   int
		verified int
	)
	finish := func() {
		if cur == nil {
			return
		}
		if next != cur.Count() {
			t.Fatalf("query %s: golden file has %d answers, index has %d", curName, next, cur.Count())
		}
		verified++
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(line, "# hash ") {
			continue // checked by TestGoldenEnumerationHash
		}
		if strings.HasPrefix(line, "# query ") {
			finish()
			fields := strings.Fields(line)
			curName = fields[2]
			wantCount, err := strconv.ParseInt(fields[4], 10, 64)
			if err != nil {
				t.Fatalf("line %d: bad count: %v", lineNo, err)
			}
			idx, ok := indexes[curName]
			if !ok {
				t.Fatalf("line %d: golden query %q not rebuilt by the test", lineNo, curName)
			}
			if idx.Count() != wantCount {
				t.Fatalf("query %s: Count = %d, want %d", curName, idx.Count(), wantCount)
			}
			cur, next = idx, 0
			continue
		}
		if cur == nil {
			t.Fatalf("line %d: answer before any query header", lineNo)
		}
		tu, err := cur.Access(next)
		if err != nil {
			t.Fatalf("query %s: Access(%d): %v", curName, next, err)
		}
		buf = formatAnswer(buf, tu)
		if string(buf) != line {
			t.Fatalf("query %s: Access(%d) = %s, golden %s (enumeration order changed)", curName, next, buf, line)
		}
		next++
	}
	finish()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if verified != len(indexes) {
		t.Fatalf("verified %d of %d recorded queries", verified, len(indexes))
	}
}

// TestGoldenEnumerationHash checks the larger recorded instance (493k
// answers) against its SHA-256: full sequence equality without storing the
// sequence.
func TestGoldenEnumerationHash(t *testing.T) {
	if testing.Short() {
		t.Skip("large golden enumeration skipped in -short mode")
	}
	f, err := os.Open(goldenOrderFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wantCount int64
	var wantHash string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# hash star3big ") {
			fields := strings.Fields(line)
			wantCount, err = strconv.ParseInt(fields[4], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			wantHash = fields[6]
		}
	}
	if wantHash == "" {
		t.Fatal("no hash entry in golden file")
	}

	db, q, err := synth.Star(synth.Config{Relations: 3, TuplesPerRelation: 200, KeyDomain: 30, SkewS: 1.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fj, err := reduce.BuildFullJoin(db, q, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := access.New(fj)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Count() != wantCount {
		t.Fatalf("Count = %d, want %d", idx.Count(), wantCount)
	}
	h := sha256.New()
	buf := make([]byte, 0, 64)
	answer := make(relation.Tuple, len(idx.Head()))
	for j := int64(0); j < idx.Count(); j++ {
		if err := idx.AccessInto(j, answer); err != nil {
			t.Fatal(err)
		}
		buf = formatAnswer(buf, answer)
		buf = append(buf, '\n')
		h.Write(buf)
	}
	if got := fmt.Sprintf("%x", h.Sum(nil)); got != wantHash {
		t.Fatalf("sequence hash %s, golden %s (enumeration order changed)", got, wantHash)
	}
}

// goldenInstance is one recorded query instance rebuilt through the public
// API: enough to Open it — and to save/reopen it as a snapshot.
type goldenInstance struct {
	name string
	db   *Database
	q    Query
	opts []Option
}

// goldenInstances rebuilds, in golden-file order, the exact instances the
// recording was made from (the public-API counterpart of goldenIndexes).
// Every instance opens with WithPlanner(PlannerOff): the golden file pins
// the *as-parsed* tree's enumeration order, which is exactly what off mode
// promises to preserve byte-for-byte. The default cost mode is pinned
// separately (TestPlannerCostGoldenSetEquivalent and the candidate
// equivalence suite in plan_equivalence_test.go): same Count, same answer
// set, order free to improve.
func goldenInstances(t *testing.T) []goldenInstance {
	t.Helper()
	var out []goldenInstance

	db, q, err := synth.Star(synth.Config{Relations: 3, TuplesPerRelation: 60, KeyDomain: 25, SkewS: 1.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, goldenInstance{name: q.Name, db: db, q: q, opts: []Option{WithPlanner(PlannerOff)}})

	db2, q2, err := synth.Chain(synth.Config{Relations: 3, TuplesPerRelation: 150, KeyDomain: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, goldenInstance{name: q2.Name, db: db2, q: q2, opts: []Option{WithCanonical(), WithPlanner(PlannerOff)}})

	q3, err := query.NewCQ("proj", []string{"x0", "x1"}, q2.Body)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, goldenInstance{name: q3.Name, db: db2, q: q3, opts: []Option{WithPlanner(PlannerOff)}})

	db4 := relation.NewDatabase()
	nat := db4.MustCreate("N", "a", "b")
	for i := 0; i < 30; i++ {
		for j := 0; j < 3; j++ {
			nat.MustInsert(relation.Value(i), relation.Value((i+j)%4))
		}
	}
	db4.Add(nat.Filter("N0", func(tu relation.Tuple) bool { return tu[1] <= 1 }))
	db4.Add(nat.Filter("N1", func(tu relation.Tuple) bool { return tu[1] >= 1 }))
	qa := query.MustCQ("QA", []string{"a", "b"}, query.NewAtom("N0", query.V("a"), query.V("b")))
	qb := query.MustCQ("QB", []string{"a", "b"}, query.NewAtom("N1", query.V("a"), query.V("b")))
	u, err := query.NewUCQ("U", qa, qb)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, goldenInstance{name: u.Name, db: db4, q: u, opts: []Option{WithVerify(), WithPlanner(PlannerOff)}})

	return out
}

// TestPlannerCostGoldenSetEquivalent opens every golden instance in the
// default cost mode and checks it against the off-mode build: identical
// Count, set-equal answers. The planner may pick a different tree (that is
// its job) but may never change the answer relation.
func TestPlannerCostGoldenSetEquivalent(t *testing.T) {
	for _, gi := range goldenInstances(t) {
		off := mustOpen(t, gi.db, gi.q, gi.opts...) // instances carry PlannerOff
		costOpts := append([]Option(nil), gi.opts...)
		costOpts = append(costOpts, WithPlanner(PlannerCost))
		cost := mustOpen(t, gi.db, gi.q, costOpts...)
		if off.Count() != cost.Count() {
			t.Fatalf("%s: off Count %d, cost Count %d", gi.name, off.Count(), cost.Count())
		}
		seen := make(map[string]int, off.Count())
		var buf []byte
		for tu, err := range off.All() {
			if err != nil {
				t.Fatal(err)
			}
			buf = formatAnswer(buf, tu)
			seen[string(buf)]++
		}
		for tu, err := range cost.All() {
			if err != nil {
				t.Fatal(err)
			}
			buf = formatAnswer(buf, tu)
			if seen[string(buf)] == 0 {
				t.Fatalf("%s: cost-mode answer %s not produced by off mode", gi.name, buf)
			}
			seen[string(buf)]--
		}
		for a, n := range seen {
			if n != 0 {
				t.Fatalf("%s: answer %s multiplicity differs by %d between modes", gi.name, a, n)
			}
		}
	}
}

// goldenHandles opens every golden instance through the public Open API.
func goldenHandles(t *testing.T) map[string]*Handle {
	t.Helper()
	out := make(map[string]*Handle)
	for _, gi := range goldenInstances(t) {
		out[gi.name] = mustOpen(t, gi.db, gi.q, gi.opts...)
	}
	return out
}

// TestGoldenEnumerationOrderViaIterator replays the recorded sequences
// through the iterator-native API: Handle.All() must walk every golden
// query's enumeration byte for byte — the new surface cannot perturb the
// order contract the old recordings pin.
func TestGoldenEnumerationOrderViaIterator(t *testing.T) {
	replayGoldenAgainstHandles(t, goldenHandles(t))
}

// TestGoldenEnumerationOrderSnapshotRoundTrip replays the same recordings a
// second way: every golden instance is built, saved into the versioned
// snapshot format, reopened from disk, and the restored handle's All()
// must walk the recorded sequence byte for byte. This pins the acceptance
// contract that a save→reopen round trip preserves the enumeration order
// exactly — built and restored indexes are interchangeable.
func TestGoldenEnumerationOrderSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	handles := make(map[string]*Handle)
	for i, gi := range goldenInstances(t) {
		h := mustOpen(t, gi.db, gi.q, gi.opts...)
		path := fmt.Sprintf("%s/golden-%d.snap", dir, i)
		if err := SaveSnapshot(path, gi.db, 0, []CatalogEntry{{Name: gi.name, Q: gi.q, H: h}}); err != nil {
			t.Fatalf("save %s: %v", gi.name, err)
		}
		cat, err := OpenSnapshot(path)
		if err != nil {
			t.Fatalf("open %s: %v", gi.name, err)
		}
		defer cat.Close()
		handles[gi.name] = cat.Entries()[0].H
	}
	replayGoldenAgainstHandles(t, handles)
}

// replayGoldenAgainstHandles drains each handle's iterator against the
// recorded sequences of the golden file.
func replayGoldenAgainstHandles(t *testing.T, handles map[string]*Handle) {
	t.Helper()
	f, err := os.Open(goldenOrderFile)
	if err != nil {
		t.Fatalf("golden file missing (regenerate against the previous implementation): %v", err)
	}
	defer f.Close()

	// Collect the recorded sequences per query, then drain each handle's
	// iterator against its recording.
	want := make(map[string][]string)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# hash ") {
			continue
		}
		if strings.HasPrefix(line, "# query ") {
			cur = strings.Fields(line)[2]
			order = append(order, cur)
			continue
		}
		want[cur] = append(want[cur], line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(order) != len(handles) {
		t.Fatalf("golden file records %d queries, handles rebuilt %d", len(order), len(handles))
	}

	var buf []byte
	for _, name := range order {
		h, ok := handles[name]
		if !ok {
			t.Fatalf("golden query %q not rebuilt via Open", name)
		}
		if h.Count() != int64(len(want[name])) {
			t.Fatalf("query %s: Count = %d, golden %d", name, h.Count(), len(want[name]))
		}
		var j int
		for tu, err := range h.All() {
			if err != nil {
				t.Fatalf("query %s: All()[%d]: %v", name, j, err)
			}
			buf = formatAnswer(buf, tu)
			if string(buf) != want[name][j] {
				t.Fatalf("query %s: All()[%d] = %s, golden %s (enumeration order changed)", name, j, buf, want[name][j])
			}
			j++
		}
		if j != len(want[name]) {
			t.Fatalf("query %s: iterator yielded %d answers, golden %d", name, j, len(want[name]))
		}
	}
}
