package renum

import (
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/synth"
	"repro/internal/tpch"
	"repro/internal/tpchq"
)

// The planner's whole value proposition is "same answers, cheaper tree", so
// this file is the suite that earns the word "same": for every tpch, synth
// and example query, every candidate join tree the planner enumerates must
// produce the identical Count() and a set-equal answer relation, and the
// chosen tree must never cost more than the as-parsed one under the
// planner's own model. The golden-order tests pin off mode byte-for-byte;
// this suite pins cost mode up to answer-set equality, which is exactly the
// freedom the paper gives any valid join tree of the same query.

var (
	planDBOnce sync.Once
	planDB     *relation.Database
	planDBErr  error
)

// planTestDB builds a small deterministic TPC-H instance (with the derived
// relations the paper queries reference) once per test binary. It is
// deliberately separate from the benchmark fixture: benchmarks scale with
// REPRO_BENCH_SF, while equivalence must stay fast and fixed.
func planTestDB(t testing.TB) *relation.Database {
	t.Helper()
	planDBOnce.Do(func() {
		d, err := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 11})
		if err != nil {
			planDBErr = err
			return
		}
		if err := tpchq.PrepareDerived(d); err != nil {
			planDBErr = err
			return
		}
		planDB = d
	})
	if planDBErr != nil {
		t.Fatal(planDBErr)
	}
	return planDB
}

// answerMultiset drains a handle into answer → multiplicity.
func answerMultiset(t testing.TB, h *Handle) map[string]int {
	t.Helper()
	out := make(map[string]int, h.Count())
	var buf []byte
	for tu, err := range h.All() {
		if err != nil {
			t.Fatal(err)
		}
		buf = formatAnswer(buf, tu)
		out[string(buf)]++
	}
	return out
}

// assertSameAnswers compares two answer multisets.
func assertSameAnswers(t testing.TB, name string, want, got map[string]int) {
	t.Helper()
	for a, n := range got {
		if want[a] != n {
			t.Fatalf("%s: answer %s has multiplicity %d, reference %d", name, a, n, want[a])
		}
	}
	for a, n := range want {
		if got[a] != n {
			t.Fatalf("%s: reference answer %s (multiplicity %d) missing from candidate", name, a, n)
		}
	}
}

// permutedCQ returns q with its body atoms reordered per a candidate order;
// the head — and thus the answer relation — is untouched.
func permutedCQ(q *query.CQ, order []int) *query.CQ {
	body := make([]query.Atom, len(order))
	for i, o := range order {
		body[i] = q.Body[o]
	}
	return &query.CQ{Name: q.Name, Head: append([]string(nil), q.Head...), Body: body}
}

// permutedUCQ returns u with its disjuncts reordered per a candidate order.
func permutedUCQ(u *query.UCQ, order []int) *query.UCQ {
	djs := make([]*query.CQ, len(order))
	for i, o := range order {
		djs[i] = u.Disjuncts[o]
	}
	return &query.UCQ{Name: u.Name, Disjuncts: djs}
}

// planEquivCQInstances gathers every CQ the repo works with: the six paper
// queries over TPC-H plus the synthetic star/chain/projection shapes the
// golden file records.
func planEquivCQInstances(t *testing.T) []struct {
	db *relation.Database
	q  *query.CQ
} {
	t.Helper()
	var out []struct {
		db *relation.Database
		q  *query.CQ
	}
	tdb := planTestDB(t)
	for _, q := range tpchq.CQs() {
		out = append(out, struct {
			db *relation.Database
			q  *query.CQ
		}{tdb, q})
	}
	sdb, sq, err := synth.Star(synth.Config{Relations: 3, TuplesPerRelation: 60, KeyDomain: 25, SkewS: 1.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, struct {
		db *relation.Database
		q  *query.CQ
	}{sdb, sq})
	cdb, cq, err := synth.Chain(synth.Config{Relations: 3, TuplesPerRelation: 150, KeyDomain: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, struct {
		db *relation.Database
		q  *query.CQ
	}{cdb, cq})
	proj, err := query.NewCQ("proj", []string{"x0", "x1"}, cq.Body)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, struct {
		db *relation.Database
		q  *query.CQ
	}{cdb, proj})
	return out
}

// TestPlanCandidateEquivalenceCQ builds EVERY candidate tree the planner
// enumerates for every CQ instance — not just the winner — and requires each
// to reproduce the as-parsed build's Count and answer multiset exactly.
func TestPlanCandidateEquivalenceCQ(t *testing.T) {
	for _, inst := range planEquivCQInstances(t) {
		inst := inst
		t.Run(inst.q.Name, func(t *testing.T) {
			ref := mustOpen(t, inst.db, inst.q, WithPlanner(PlannerOff))
			want := answerMultiset(t, ref)

			_, p, err := plan.ChooseCQ(inst.db, inst.q, plan.ModeCost)
			if err != nil {
				t.Fatalf("ChooseCQ: %v", err)
			}
			if len(p.Candidates) == 0 {
				t.Fatal("planner produced no candidates")
			}
			for i := range p.Candidates[0].Order {
				if p.Candidates[0].Order[i] != i {
					t.Fatalf("candidate 0 is not the identity order: %v", p.Candidates[0].Order)
				}
			}
			if p.ChosenCost() > p.IdentityCost() {
				t.Fatalf("chosen cost %g exceeds as-parsed cost %g", p.ChosenCost(), p.IdentityCost())
			}
			for i, c := range p.Candidates {
				h := mustOpen(t, inst.db, permutedCQ(inst.q, c.Order), WithPlanner(PlannerOff))
				if h.Count() != ref.Count() {
					t.Fatalf("candidate %d order %v: Count %d, reference %d", i, c.Order, h.Count(), ref.Count())
				}
				assertSameAnswers(t, inst.q.Name, want, answerMultiset(t, h))
			}

			// And the default cost-mode Open — whatever it picked — agrees.
			cost := mustOpen(t, inst.db, inst.q)
			assertSameAnswers(t, inst.q.Name+"/cost", want, answerMultiset(t, cost))
		})
	}
}

// TestPlanCandidateEquivalenceUCQ does the same for union disjunct orders:
// every candidate order the planner enumerates must serve the identical
// union, and orders that fail mc-compatibility must be the ones the real
// build already falls back from (the as-parsed order itself must never
// fail). Candidates are exercised through Open so the fallback path is the
// one under test.
func TestPlanCandidateEquivalenceUCQ(t *testing.T) {
	tdb := planTestDB(t)
	for _, u := range tpchq.UCQs() {
		u := u
		t.Run(u.Name, func(t *testing.T) {
			ref := mustOpen(t, tdb, u, WithPlanner(PlannerOff))
			want := answerMultiset(t, ref)

			_, p, err := plan.ChooseUCQ(tdb, u, plan.ModeCost)
			if err != nil {
				t.Fatalf("ChooseUCQ: %v", err)
			}
			if p.ChosenCost() > p.IdentityCost() {
				t.Fatalf("chosen cost %g exceeds as-parsed cost %g", p.ChosenCost(), p.IdentityCost())
			}
			for i, c := range p.Candidates {
				if c.Order[0] != 0 {
					t.Fatalf("candidate %d moved disjunct 0 (order %v): the union's head naming would change", i, c.Order)
				}
				h, err := Open(tdb, permutedUCQ(u, c.Order), WithPlanner(PlannerOff))
				if err != nil {
					// A reordered union may fail mc-compatibility; the planner's
					// caller falls back to as-parsed, so a failing candidate is
					// acceptable — but the identity candidate never is.
					if i == 0 {
						t.Fatalf("as-parsed order failed to build: %v", err)
					}
					continue
				}
				if h.Count() != ref.Count() {
					t.Fatalf("candidate %d order %v: Count %d, reference %d", i, c.Order, h.Count(), ref.Count())
				}
				assertSameAnswers(t, u.Name, want, answerMultiset(t, h))
			}

			cost := mustOpen(t, tdb, u)
			assertSameAnswers(t, u.Name+"/cost", want, answerMultiset(t, cost))
		})
	}
}

// TestPlannerNeverWorseOnBenchQueries pins the acceptance criterion directly:
// on every benchmark query (the six paper CQs and the three unions) the
// planner's chosen cost is at most the as-parsed cost, and ties keep the
// as-parsed order.
func TestPlannerNeverWorseOnBenchQueries(t *testing.T) {
	tdb := planTestDB(t)
	for _, q := range tpchq.CQs() {
		_, p, err := plan.ChooseCQ(tdb, q, plan.ModeCost)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if p.ChosenCost() > p.IdentityCost() {
			t.Errorf("%s: chosen %g > as-parsed %g", q.Name, p.ChosenCost(), p.IdentityCost())
		}
		if p.ChosenCost() == p.IdentityCost() && !p.Identity() {
			t.Errorf("%s: tie broken away from the as-parsed order", q.Name)
		}
	}
	for _, u := range tpchq.UCQs() {
		_, p, err := plan.ChooseUCQ(tdb, u, plan.ModeCost)
		if err != nil {
			t.Fatalf("%s: %v", u.Name, err)
		}
		if p.ChosenCost() > p.IdentityCost() {
			t.Errorf("%s: chosen %g > as-parsed %g", u.Name, p.ChosenCost(), p.IdentityCost())
		}
	}
}

// FuzzPlanEquivalence generates random star/chain workloads and requires the
// cost-mode build to agree with the off-mode build on Count and answer
// multiset — the planner must never be able to change an answer, whatever
// skew or shape the data takes.
func FuzzPlanEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint16(40), uint16(12), uint8(0), int64(1))
	f.Add(uint8(1), uint8(3), uint16(60), uint16(8), uint8(130), int64(42))
	f.Add(uint8(0), uint8(4), uint16(25), uint16(3), uint8(200), int64(7))
	f.Add(uint8(1), uint8(2), uint16(1), uint16(1), uint8(0), int64(0))
	f.Fuzz(func(t *testing.T, kind, relations uint8, tuples, keyDomain uint16, skew100 uint8, seed int64) {
		cfg := synth.Config{
			Relations:         1 + int(relations)%4,
			TuplesPerRelation: 1 + int(tuples)%64,
			KeyDomain:         1 + int(keyDomain)%24,
			Seed:              seed,
		}
		// Zipf skew needs s > 1 and a domain of at least 2.
		if skew100 > 100 && cfg.KeyDomain > 1 {
			cfg.SkewS = float64(skew100) / 100
		}
		var (
			db  *relation.Database
			q   *query.CQ
			err error
		)
		if kind%2 == 0 {
			db, q, err = synth.Chain(cfg)
		} else {
			db, q, err = synth.Star(cfg)
		}
		if err != nil {
			t.Skip()
		}
		off, err := Open(db, q, WithPlanner(PlannerOff))
		if err != nil {
			t.Fatalf("off-mode build failed on a generated workload: %v", err)
		}
		// Degenerate inputs (tiny key domains) explode the answer count —
		// a 4-ary join over one key is |R|⁴ answers. The build above already
		// exercised the planner; cap the full-drain comparison.
		if off.Count() > 100_000 {
			t.Skip("answer count too large to drain")
		}
		cost, err := Open(db, q, WithPlanner(PlannerCost))
		if err != nil {
			t.Fatalf("cost-mode build failed where off mode succeeded: %v", err)
		}
		if off.Count() != cost.Count() {
			t.Fatalf("Count diverged: off %d, cost %d", off.Count(), cost.Count())
		}
		assertSameAnswers(t, q.Name, answerMultiset(t, off), answerMultiset(t, cost))
		if _, p, err := plan.ChooseCQ(db, q, plan.ModeCost); err == nil {
			if p.ChosenCost() > p.IdentityCost() {
				t.Fatalf("chosen cost %g exceeds as-parsed cost %g", p.ChosenCost(), p.IdentityCost())
			}
		}
	})
}
