package renum

import (
	"testing"
	"time"
)

// TestWithBuildObserver: Open reports build-stage timings for every handle
// kind, with non-negative durations and the stage names the serving tier's
// build histograms key on.
func TestWithBuildObserver(t *testing.T) {
	db, q := fixtureDB(t)
	_, u := fixtureUCQ(t)

	collect := func() (map[string]int, Option) {
		stages := map[string]int{}
		return stages, WithBuildObserver(func(stage string, d time.Duration) {
			if d < 0 {
				t.Errorf("stage %q reported negative duration %v", stage, d)
			}
			stages[stage]++
		})
	}

	cqStages, opt := collect()
	mustOpen(t, db, q, opt)
	if cqStages["index_build"] != 1 {
		t.Fatalf("static CQ stages = %v, want one index_build", cqStages)
	}

	ucqStages, opt := collect()
	mustOpen(t, db, u, opt)
	if ucqStages["union_build"] != 1 {
		t.Fatalf("UCQ stages = %v, want one union_build", ucqStages)
	}

	dq := MustCQ("dq", []string{"a", "b"}, NewAtom("R", V("a"), V("b")))
	dynStages, opt := collect()
	mustOpen(t, db, dq, WithDynamic(), opt)
	if dynStages["dynamic_build"] != 1 {
		t.Fatalf("dynamic stages = %v, want one dynamic_build", dynStages)
	}

	// Without the option nothing is emitted (the hook defaults to nil and
	// Open must not panic on it).
	mustOpen(t, db, q)
}
