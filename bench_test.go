// Benchmarks regenerating the measurements behind every table and figure of
// the paper (one benchmark family per artifact; see DESIGN.md §3), plus the
// ablation benchmarks of DESIGN.md §5.
//
// Scale: REPRO_BENCH_SF overrides the TPC-H scale factor (default 0.01).
// Run with: go test -bench=. -benchmem
package renum

import (
	"context"
	"encoding/csv"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/access"
	"repro/internal/cqenum"
	"repro/internal/dynaccess"
	"repro/internal/fenwick"
	"repro/internal/mcucq"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/sample"
	"repro/internal/synth"
	"repro/internal/tpch"
	"repro/internal/tpchq"
	"repro/internal/unionenum"
)

var (
	benchOnce sync.Once
	benchDB   *relation.Database
)

func benchScale() float64 {
	if s := os.Getenv("REPRO_BENCH_SF"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.01
}

func db(b *testing.B) *relation.Database {
	benchOnce.Do(func() {
		d, err := tpch.Generate(tpch.Config{ScaleFactor: benchScale(), Seed: 1})
		if err != nil {
			panic(err)
		}
		if err := tpchq.PrepareDerived(d); err != nil {
			panic(err)
		}
		benchDB = d
	})
	return benchDB
}

func prepare(b *testing.B, q *query.CQ) *cqenum.CQ {
	b.Helper()
	c, err := cqenum.Prepare(db(b), q, reduce.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// --- Figure 1: total enumeration time, REnum(CQ) vs Sample(EW) -------------
//
// One op = preprocessing + enumerating 10% of the answers (the regime where
// the paper's Figure 1 begins separating the algorithms).

func BenchmarkFig1(b *testing.B) {
	for _, q := range tpchq.CQs() {
		q := q
		b.Run(q.Name+"/REnumCQ", func(b *testing.B) {
			d := db(b)
			for i := 0; i < b.N; i++ {
				c, err := cqenum.Prepare(d, q, reduce.Options{})
				if err != nil {
					b.Fatal(err)
				}
				k := c.Count() / 10
				perm := c.Permute(rand.New(rand.NewSource(int64(i))))
				for j := int64(0); j < k; j++ {
					perm.Next()
				}
			}
		})
		b.Run(q.Name+"/SampleEW", func(b *testing.B) {
			d := db(b)
			for i := 0; i < b.N; i++ {
				c, err := cqenum.Prepare(d, q, reduce.Options{})
				if err != nil {
					b.Fatal(err)
				}
				k := c.Count() / 10
				s := sample.New(c.Index, sample.EW, rand.New(rand.NewSource(int64(i))))
				for j := int64(0); j < k; j++ {
					s.Next()
				}
			}
		})
	}
}

// --- Figures 2/3/7: per-answer delay ----------------------------------------
//
// One op = producing one answer (ns/op ≈ the delay the paper box-plots).
// Fig2 measures the full-enumeration regime; Fig3 the first-50% regime
// (Sample(EW)'s duplicate rate is what separates them).

func benchDelay(b *testing.B, fraction float64, mk func(c *cqenum.CQ, seed int64) func() bool) {
	for _, q := range tpchq.CQs() {
		q := q
		b.Run(q.Name, func(b *testing.B) {
			c := prepare(b, q)
			limit := int64(float64(c.Count()) * fraction)
			if limit < 1 {
				limit = 1
			}
			seed := int64(0)
			next := mk(c, seed)
			produced := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if produced >= limit {
					b.StopTimer()
					seed++
					next = mk(c, seed)
					produced = 0
					b.StartTimer()
				}
				if !next() {
					b.Fatal("enumeration ended early")
				}
				produced++
			}
		})
	}
}

func BenchmarkFig2DelayREnumCQ(b *testing.B) {
	benchDelay(b, 1.0, func(c *cqenum.CQ, seed int64) func() bool {
		p := c.Permute(rand.New(rand.NewSource(seed)))
		return func() bool { _, ok := p.Next(); return ok }
	})
}

func BenchmarkFig2DelaySampleEW(b *testing.B) {
	benchDelay(b, 1.0, func(c *cqenum.CQ, seed int64) func() bool {
		s := sample.New(c.Index, sample.EW, rand.New(rand.NewSource(seed)))
		return func() bool { _, ok := s.Next(); return ok }
	})
}

func BenchmarkFig3DelayREnumCQ(b *testing.B) {
	benchDelay(b, 0.5, func(c *cqenum.CQ, seed int64) func() bool {
		p := c.Permute(rand.New(rand.NewSource(seed)))
		return func() bool { _, ok := p.Next(); return ok }
	})
}

func BenchmarkFig3DelaySampleEW(b *testing.B) {
	benchDelay(b, 0.5, func(c *cqenum.CQ, seed int64) func() bool {
		s := sample.New(c.Index, sample.EW, rand.New(rand.NewSource(seed)))
		return func() bool { _, ok := s.Next(); return ok }
	})
}

// --- Figures 4a/4b: UCQ enumeration ------------------------------------------
//
// One op = preprocessing + full random-order enumeration of the union.

func BenchmarkFig4a(b *testing.B) {
	for _, u := range tpchq.UCQs() {
		u := u
		b.Run(u.Name+"/CumulativeCQ", func(b *testing.B) {
			d := db(b)
			for i := 0; i < b.N; i++ {
				for _, q := range u.Disjuncts {
					c, err := cqenum.Prepare(d, q, reduce.Options{})
					if err != nil {
						b.Fatal(err)
					}
					perm := c.Permute(rand.New(rand.NewSource(int64(i))))
					for {
						if _, ok := perm.Next(); !ok {
							break
						}
					}
				}
			}
		})
		b.Run(u.Name+"/REnumUCQ", func(b *testing.B) {
			d := db(b)
			for i := 0; i < b.N; i++ {
				e, err := unionenum.NewFromUCQ(d, u, rand.New(rand.NewSource(int64(i))), reduce.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, ok := e.Next(); !ok {
						break
					}
				}
			}
		})
		b.Run(u.Name+"/REnumMCUCQ", func(b *testing.B) {
			d := db(b)
			for i := 0; i < b.N; i++ {
				m, err := mcucq.New(d, u, mcucq.Options{})
				if err != nil {
					b.Fatal(err)
				}
				perm := m.Permute(rand.New(rand.NewSource(int64(i))))
				for {
					if _, ok := perm.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// BenchmarkFig4b measures the 60%-regime where the paper observes
// REnum(mcUCQ) overtaking REnum(UCQ) on QS7∪QC7.
func BenchmarkFig4b(b *testing.B) {
	u := tpchq.UnionQ7()
	b.Run("REnumUCQ60", func(b *testing.B) {
		d := db(b)
		for i := 0; i < b.N; i++ {
			e, err := unionenum.NewFromUCQ(d, u, rand.New(rand.NewSource(int64(i))), reduce.Options{})
			if err != nil {
				b.Fatal(err)
			}
			// 60% of the union: first compute the union size cheaply from a
			// previous full drain is overkill per-op; drain 60% of Remaining
			// upper bound instead (stable across iterations).
			k := e.Remaining() * 6 / 10
			for j := int64(0); j < k; j++ {
				if _, ok := e.Next(); !ok {
					break
				}
			}
		}
	})
	b.Run("REnumMCUCQ60", func(b *testing.B) {
		d := db(b)
		for i := 0; i < b.N; i++ {
			m, err := mcucq.New(d, u, mcucq.Options{})
			if err != nil {
				b.Fatal(err)
			}
			k := m.Count() * 6 / 10
			perm := m.Permute(rand.New(rand.NewSource(int64(i))))
			for j := int64(0); j < k; j++ {
				perm.Next()
			}
		}
	})
}

// --- Figure 5: rejection overhead of REnum(UCQ) -----------------------------
//
// One op = a full instrumented drain of QS7∪QC7; the rejected-iteration share
// is reported as a custom metric.

func BenchmarkFig5Rejections(b *testing.B) {
	d := db(b)
	u := tpchq.UnionQ7()
	var rejects, answers int64
	for i := 0; i < b.N; i++ {
		e, err := unionenum.NewFromUCQ(d, u, rand.New(rand.NewSource(int64(i))), reduce.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := e.Next(); !ok {
				break
			}
			answers++
		}
		rejects += e.Rejections
	}
	if answers > 0 {
		b.ReportMetric(float64(rejects)/float64(answers), "rejections/answer")
	}
}

// --- Figures 6/8 and appendix B.2.3: the other baselines ---------------------
//
// One op = one distinct answer from the given sampler on Q3 (Q3 is the query
// the appendix uses for OE and RS).

func benchSamplerDraws(b *testing.B, m sample.Method) {
	c := prepare(b, tpchq.Q3())
	limit := c.Count() / 10
	if limit < 1 {
		limit = 1
	}
	s := sample.New(c.Index, m, rand.New(rand.NewSource(1)))
	s.MaxTrialsPerDraw = 1_000_000
	produced := int64(0)
	seed := int64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if produced >= limit {
			b.StopTimer()
			seed++
			s = sample.New(c.Index, m, rand.New(rand.NewSource(seed)))
			s.MaxTrialsPerDraw = 1_000_000
			produced = 0
			b.StartTimer()
		}
		if _, ok := s.Next(); !ok {
			b.Skipf("sampler %v exhausted its trial budget", m)
		}
		produced++
	}
	b.ReportMetric(float64(s.Trials)/float64(produced+1), "trials/answer")
}

func BenchmarkFig6SampleEO(b *testing.B) { benchSamplerDraws(b, sample.EO) }
func BenchmarkFig8SampleOE(b *testing.B) { benchSamplerDraws(b, sample.OE) }
func BenchmarkRSSampleRS(b *testing.B)   { benchSamplerDraws(b, sample.RS) }

// --- Ablations (DESIGN.md §5) ------------------------------------------------

// Ablation 1: binary search vs linear scan inside buckets during Access.
func BenchmarkAblationBucketSearch(b *testing.B) {
	c := prepare(b, tpchq.Q3())
	n := c.Count()
	rng := rand.New(rand.NewSource(2))
	b.Run("BinarySearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Index.Access(rng.Int63n(n)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LinearScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Index.AccessLinear(rng.Int63n(n)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation 2: Fisher–Yates over random access (Theorem 3.7) vs running
// Algorithm 5 on the singleton union — why the direct approach is right for
// single CQs.
func BenchmarkAblationPermutationStrategy(b *testing.B) {
	q := tpchq.Q0()
	b.Run("FisherYates", func(b *testing.B) {
		c := prepare(b, q)
		p := c.Permute(rand.New(rand.NewSource(1)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := p.Next(); !ok {
				b.StopTimer()
				p = c.Permute(rand.New(rand.NewSource(int64(i))))
				b.StartTimer()
			}
		}
	})
	b.Run("Algorithm5Singleton", func(b *testing.B) {
		c := prepare(b, q)
		e := unionenum.New([]unionenum.Set{c.NewDeletableSet()}, rand.New(rand.NewSource(1)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := e.Next(); !ok {
				b.StopTimer()
				e = unionenum.New([]unionenum.Set{c.NewDeletableSet()}, rand.New(rand.NewSource(int64(i))))
				b.StartTimer()
			}
		}
	})
}

// Ablation 3: Algorithm 5's owner-deletion versus plain
// sampling-with-rejection of already-seen answers (Karp–Luby style) on an
// overlapping union. One op = one emitted answer of QS7∪QC7.
func BenchmarkAblationKarpLuby(b *testing.B) {
	u := tpchq.UnionQ7()
	d := db(b)
	b.Run("OwnerDeletion", func(b *testing.B) {
		e, err := unionenum.NewFromUCQ(d, u, rand.New(rand.NewSource(1)), reduce.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := e.Next(); !ok {
				b.StopTimer()
				e, err = unionenum.NewFromUCQ(d, u, rand.New(rand.NewSource(int64(i))), reduce.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	})
	b.Run("RejectSeen", func(b *testing.B) {
		// Karp–Luby sampling (uniform over the union with replacement via
		// weighted disjunct choice + ownership test) with seen-set rejection.
		mk := func(seed int64) (func() (relation.Tuple, bool), int64) {
			var cs []*cqenum.CQ
			var total int64
			for _, q := range u.Disjuncts {
				c, err := cqenum.Prepare(d, q, reduce.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cs = append(cs, c)
				total += c.Count()
			}
			rng := rand.New(rand.NewSource(seed))
			seen := make(map[string]bool)
			return func() (relation.Tuple, bool) {
				for {
					r := rng.Int63n(total)
					var chosen int
					for i, c := range cs {
						if r < c.Count() {
							chosen = i
							break
						}
						r -= c.Count()
					}
					t, err := cs[chosen].Index.Access(r)
					if err != nil {
						return nil, false
					}
					// Ownership: emit only via the first containing disjunct.
					owner := -1
					for i, c := range cs {
						if c.Index.Contains(t) {
							owner = i
							break
						}
					}
					if owner != chosen {
						continue
					}
					k := t.Key()
					if seen[k] {
						continue
					}
					seen[k] = true
					return t, true
				}
			}, total
		}
		next, total := mk(1)
		produced := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if produced >= total*9/10 { // the tail is coupon-collector hell
				b.StopTimer()
				next, total = mk(int64(i))
				produced = 0
				b.StartTimer()
			}
			if _, ok := next(); !ok {
				b.Fatal("sampler died")
			}
			produced++
		}
	})
}

// Ablation 4: the appendix Largest formulation vs the direct binary search
// in mc-UCQ Compute-k. One op = one union Access.
func BenchmarkAblationLargest(b *testing.B) {
	d := db(b)
	u := tpchq.UnionQ7()
	for _, mode := range []struct {
		name       string
		useLargest bool
	}{{"DirectRank", false}, {"ViaLargest", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			m, err := mcucq.New(d, u, mcucq.Options{UseLargest: mode.useLargest})
			if err != nil {
				b.Fatal(err)
			}
			n := m.Count()
			rng := rand.New(rand.NewSource(3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Access(rng.Int63n(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 5: Yannakakis full reduction on vs off (weights absorb dangling
// tuples either way; the reduction trades preprocessing work for smaller
// buckets). One op = preprocessing + 1000 random accesses on Q9 (the query
// with the most dangling potential: orders without customers etc.).
func BenchmarkAblationFullReduce(b *testing.B) {
	d := db(b)
	q := tpchq.Q9()
	for _, mode := range []struct {
		name string
		opts reduce.Options
	}{
		{"WithFullReduce", reduce.Options{}},
		{"SkipFullReduce", reduce.Options{SkipFullReduce: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := cqenum.Prepare(d, q, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(i)))
				n := c.Count()
				for j := 0; j < 1000; j++ {
					if _, err := c.Index.Access(rng.Int63n(n)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// Ablation 6: sampler robustness to skew — on Zipf-skewed star joins the
// exact-weight sampler (EW) is unaffected while the rejection-based EO
// degrades with the skew parameter. One op = one accepted uniform sample.
func BenchmarkAblationSkew(b *testing.B) {
	for _, skew := range []float64{0, 1.5, 2.5} {
		db2, q, err := synth.Star(synth.Config{
			Relations: 2, TuplesPerRelation: 20000, KeyDomain: 500, Seed: 5, SkewS: skew,
		})
		if err != nil {
			b.Fatal(err)
		}
		c, err := cqenum.Prepare(db2, q, reduce.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if c.Count() == 0 {
			continue
		}
		for _, m := range []sample.Method{sample.EW, sample.EO} {
			m := m
			b.Run(fmt.Sprintf("skew=%.1f/%s", skew, m), func(b *testing.B) {
				s := sample.New(c.Index, m, rand.New(rand.NewSource(1)))
				for i := 0; i < b.N; i++ {
					if _, ok := s.Sample(); !ok {
						b.Fatal("sampler failed")
					}
				}
				b.ReportMetric(float64(s.Trials)/float64(b.N), "trials/sample")
			})
		}
	}
}

// --- Parallel build and batched serving ---------------------------------------

// BenchmarkParallelBuild measures Algorithm 2 index construction over a
// large synthetic star join — the shape with the most inter-node
// parallelism (every leaf is independent) — serial vs the wave-scheduled
// parallel build. One op = one full index build over the prebuilt reduced
// full join; the reduction itself is outside the timed region for both
// variants. On a multi-core machine the Parallel variant should approach
// leaf_time + root_time instead of the serial sum.
func BenchmarkParallelBuild(b *testing.B) {
	db2, q, err := synth.Star(synth.Config{
		Relations: 6, TuplesPerRelation: 120_000, KeyDomain: 8_000, Seed: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	fj, err := reduce.BuildFullJoin(db2, q, reduce.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := access.NewWithOptions(fj, access.BuildOptions{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("Parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := access.NewWithOptions(fj, access.BuildOptions{
				Workers: runtime.GOMAXPROCS(0), SerialThreshold: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAccessBatch compares three ways of answering 1024 random probes
// against one shared TPC-H index: one-at-a-time Access, the batched
// AccessBatch (internal fan-out), and concurrent clients each running
// batches (b.RunParallel — the serving-under-load shape). ns/op is per
// 1024-probe request.
func BenchmarkAccessBatch(b *testing.B) {
	c := prepare(b, tpchq.Q3())
	n := c.Count()
	const batch = 1024
	mkJS := func(rng *rand.Rand) []int64 {
		js := make([]int64, batch)
		for i := range js {
			js[i] = rng.Int63n(n)
		}
		return js
	}
	b.Run("SerialLoop", func(b *testing.B) {
		rng := rand.New(rand.NewSource(13))
		js := mkJS(rng)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, j := range js {
				if _, err := c.Index.Access(j); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Batched", func(b *testing.B) {
		rng := rand.New(rand.NewSource(13))
		js := mkJS(rng)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Index.AccessBatch(js, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ConcurrentClients", func(b *testing.B) {
		var seed atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(13 + seed.Add(1)))
			js := mkJS(rng)
			for pb.Next() {
				// Each client batches but lets the shared pool stay fair:
				// workers=1 per request, parallelism across clients.
				if _, err := c.Index.AccessBatch(js, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkSampleN measures batched distinct sampling (k=256) against the
// serial SampleK it must be distribution-identical to.
func BenchmarkSampleN(b *testing.B) {
	c := prepare(b, tpchq.Q3())
	const k = 256
	b.Run("SampleK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := c.Permute(rand.New(rand.NewSource(int64(i))))
			for j := 0; j < k; j++ {
				if _, ok := p.Next(); !ok {
					break
				}
			}
		}
	})
	b.Run("SampleN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := c.Permute(rand.New(rand.NewSource(int64(i))))
			if got := p.NextN(k, 0); len(got) == 0 && c.Count() > 0 {
				b.Fatal("empty batch")
			}
		}
	})
}

// --- Core-structure micro-benchmarks -----------------------------------------

func BenchmarkAccess(b *testing.B) {
	for _, q := range tpchq.CQs() {
		q := q
		b.Run(q.Name, func(b *testing.B) {
			c := prepare(b, q)
			n := c.Count()
			rng := rand.New(rand.NewSource(4))
			buf := make(relation.Tuple, len(c.Index.Head()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Index.AccessInto(rng.Int63n(n), buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProbeAllocs pins the allocation profile of the three probe
// primitives on a real TPC-H index (run with -benchmem): AccessInto and
// InvertedAccess must report 0 allocs/op, Access exactly 1 (the returned
// answer). This is the per-probe cost that AccessBatch, SampleN and the
// batched serving paths inherit.
func BenchmarkProbeAllocs(b *testing.B) {
	c := prepare(b, tpchq.Q3())
	n := c.Count()
	rng := rand.New(rand.NewSource(6))
	b.Run("AccessInto", func(b *testing.B) {
		buf := make(relation.Tuple, len(c.Index.Head()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Index.AccessInto(rng.Int63n(n), buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Access", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Index.Access(rng.Int63n(n)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("InvertedAccess", func(b *testing.B) {
		answers := make([]relation.Tuple, 1024)
		for i := range answers {
			t, err := c.Index.Access(rng.Int63n(n))
			if err != nil {
				b.Fatal(err)
			}
			answers[i] = t
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := c.Index.InvertedAccess(answers[i%len(answers)]); !ok {
				b.Fatal("answer vanished")
			}
		}
	})
}

func BenchmarkInvertedAccess(b *testing.B) {
	c := prepare(b, tpchq.Q3())
	n := c.Count()
	rng := rand.New(rand.NewSource(5))
	answers := make([]relation.Tuple, 1024)
	for i := range answers {
		t, err := c.Index.Access(rng.Int63n(n))
		if err != nil {
			b.Fatal(err)
		}
		answers[i] = t
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Index.InvertedAccess(answers[i%len(answers)]); !ok {
			b.Fatal("answer vanished")
		}
	}
}

func BenchmarkPreprocessing(b *testing.B) {
	d := db(b)
	for _, q := range tpchq.CQs() {
		q := q
		b.Run(q.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cqenum.Prepare(d, q, reduce.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Dynamic-index extension benchmarks --------------------------------------

// q3Full is Q3 with every variable in the head (the dynamic index requires a
// projection-free query).
func q3Full() *query.CQ {
	return query.MustCQ("Q3full",
		[]string{"ok", "ck", "cn", "cnk", "lpk", "lsk", "ln"},
		query.NewAtom("customer", query.V("ck"), query.V("cn"), query.V("cnk")),
		query.NewAtom("orders", query.V("ok"), query.V("ck")),
		query.NewAtom("lineitem", query.V("ok"), query.V("lpk"), query.V("lsk"), query.V("ln")),
	)
}

func BenchmarkDynamicBuild(b *testing.B) {
	d := db(b)
	q := q3Full()
	for i := 0; i < b.N; i++ {
		if _, err := dynaccess.New(d, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicInsertDelete(b *testing.B) {
	d := db(b)
	idx, err := dynaccess.New(d, q3Full())
	if err != nil {
		b.Fatal(err)
	}
	orders, err := d.Relation("orders")
	if err != nil {
		b.Fatal(err)
	}
	maxOrder := int64(orders.Len())
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Churn lineitems of a random existing order.
		tu := relation.Tuple{
			relation.Value(1 + rng.Int63n(maxOrder)),
			relation.Value(1 + rng.Int63n(1000)),
			relation.Value(1 + rng.Int63n(100)),
			relation.Value(90 + rng.Int63n(5)),
		}
		if i%2 == 0 {
			if _, err := idx.Insert("lineitem", tu); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := idx.Delete("lineitem", tu); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDynamicAccess(b *testing.B) {
	d := db(b)
	idx, err := dynaccess.New(d, q3Full())
	if err != nil {
		b.Fatal(err)
	}
	n := idx.Count()
	if n == 0 {
		b.Skip("empty")
	}
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Access(rng.Int63n(n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFenwick(b *testing.B) {
	b.Run("Add", func(b *testing.B) {
		tr := fenwick.New(make([]int64, 1<<16))
		rng := rand.New(rand.NewSource(8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Add(rng.Intn(1<<16), 1)
		}
	})
	b.Run("FindPrefix", func(b *testing.B) {
		vals := make([]int64, 1<<16)
		for i := range vals {
			vals[i] = int64(i % 7)
		}
		tr := fenwick.New(vals)
		total := tr.Total()
		rng := rand.New(rand.NewSource(9))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tr.FindPrefix(rng.Int63n(total)) < 0 {
				b.Fatal("lost target")
			}
		}
	})
}

func BenchmarkCountUnionMCUCQ(b *testing.B) {
	d := db(b)
	for _, u := range tpchq.UCQs() {
		u := u
		b.Run(u.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := mcucq.New(d, u, mcucq.Options{})
				if err != nil {
					b.Fatal(err)
				}
				_ = m.Count()
			}
		})
	}
}

func init() {
	// Make -bench output self-describing about the data scale.
	if os.Getenv("REPRO_BENCH_SF") == "" {
		fmt.Fprintf(os.Stderr, "bench: TPC-H scale factor %v (override with REPRO_BENCH_SF)\n", 0.01)
	}
}

// BenchmarkColdStart measures what a process pays before it can serve its
// first probe, on the 493k-answer golden star instance (the same one the
// enumeration-order hash pins):
//
//   - FromCSV: the daemon's boot path before persistent snapshots — read
//     the CSV tables from disk, intern every cell, and run the full
//     preprocessing (what `renumd -table ... -query ...` pays);
//   - Preprocess: preprocessing alone, over already-resident relations —
//     the strict lower bound of any rebuild;
//   - FromSnapshot: renum.OpenSnapshot on a catalog built once — open,
//     checksum and validate the sections, wire the handles. No parsing, no
//     hashing, no reduction, no weight computation.
//
// The FromCSV/FromSnapshot ratio is the headline number of the snapshot
// subsystem (it is what a restart actually saves); CI records it in
// BENCH_coldstart.json.
func BenchmarkColdStart(b *testing.B) {
	cfg := synth.Config{Relations: 3, TuplesPerRelation: 200, KeyDomain: 30, SkewS: 1.3, Seed: 9}
	db2, q, err := synth.Star(cfg)
	if err != nil {
		b.Fatal(err)
	}
	h, err := Open(db2, q)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	path := filepath.Join(dir, "coldstart.snap")
	if err := SaveSnapshot(path, db2, 0, []CatalogEntry{{Name: q.Name, Q: q, H: h}}); err != nil {
		b.Fatal(err)
	}
	count := h.Count()

	// Dump the instance as the CSV files a daemon would boot from.
	var csvPaths []string
	for _, name := range db2.Names() {
		rel, err := db2.Relation(name)
		if err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		sb.WriteString(strings.Join(rel.Schema(), ","))
		sb.WriteByte('\n')
		row := make(relation.Tuple, rel.Arity())
		for i := 0; i < rel.Len(); i++ {
			rel.ReadTuple(i, row)
			for a, v := range row {
				if a > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(strconv.FormatInt(int64(v), 10))
			}
			sb.WriteByte('\n')
		}
		p := filepath.Join(dir, name+".csv")
		if err := os.WriteFile(p, []byte(sb.String()), 0o644); err != nil {
			b.Fatal(err)
		}
		csvPaths = append(csvPaths, p)
	}

	// loadCSVs mirrors internal/load's CSV dialect (header = schema, every
	// cell interned); the benchmark cannot import internal/load — it imports
	// this package — so the five relevant lines live here.
	loadCSVs := func() *Database {
		dbi := NewDatabase()
		for _, p := range csvPaths {
			f, err := os.Open(p)
			if err != nil {
				b.Fatal(err)
			}
			rows, err := csv.NewReader(f).ReadAll()
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			rel, err := dbi.Create(strings.TrimSuffix(filepath.Base(p), ".csv"), rows[0]...)
			if err != nil {
				b.Fatal(err)
			}
			for _, rowCells := range rows[1:] {
				tup := make(relation.Tuple, len(rowCells))
				for i, cell := range rowCells {
					tup[i] = dbi.Intern(cell)
				}
				if _, err := rel.Insert(tup); err != nil {
					b.Fatal(err)
				}
			}
		}
		return dbi
	}

	b.Run("FromCSV", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dbi := loadCSVs()
			hi, err := Open(dbi, q)
			if err != nil {
				b.Fatal(err)
			}
			if hi.Count() != count {
				b.Fatalf("count %d, want %d", hi.Count(), count)
			}
		}
	})
	b.Run("Preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hi, err := Open(db2, q)
			if err != nil {
				b.Fatal(err)
			}
			if hi.Count() != count {
				b.Fatalf("count %d, want %d", hi.Count(), count)
			}
		}
	})
	b.Run("FromSnapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cat, err := OpenSnapshot(path)
			if err != nil {
				b.Fatal(err)
			}
			if got := cat.Entries()[0].H.Count(); got != count {
				b.Fatalf("count %d, want %d", got, count)
			}
			cat.Close()
		}
	})
}

// BenchmarkIterAll measures the iterator-native enumeration surface against
// the legacy cursor: one op drains the full enumeration (≈493k answers) of
// a skewed star join. Handle.All is a range-over-func wrapper around the
// same sequential Access probes the Enumerator makes, so its per-answer
// overhead must stay within a few percent (the CI bench-smoke artifact
// tracks both numbers).
func BenchmarkIterAll(b *testing.B) {
	db2, q, err := synth.Star(synth.Config{Relations: 3, TuplesPerRelation: 200, KeyDomain: 30, SkewS: 1.3, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	ra, err := NewRandomAccess(db2, q)
	if err != nil {
		b.Fatal(err)
	}
	h, err := Open(db2, q)
	if err != nil {
		b.Fatal(err)
	}
	n := ra.Count()

	b.Run("LegacyEnumeratorNext", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := ra.Enumerate()
			var drained int64
			for {
				if _, ok := e.Next(); !ok {
					break
				}
				drained++
			}
			if drained != n {
				b.Fatalf("drained %d of %d", drained, n)
			}
		}
	})
	b.Run("HandleAll", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var drained int64
			for _, err := range h.All() {
				if err != nil {
					b.Fatal(err)
				}
				drained++
			}
			if drained != n {
				b.Fatalf("drained %d of %d", drained, n)
			}
		}
	})
	b.Run("HandleAllContext", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var drained int64
			for _, err := range h.AllContext(ctx) {
				if err != nil {
					b.Fatal(err)
				}
				drained++
			}
			if drained != n {
				b.Fatalf("drained %d of %d", drained, n)
			}
		}
	})
}
