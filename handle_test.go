package renum

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/synth"
)

// fixtureUCQ builds a mutually-compatible union over the fixtureDB
// relations: U(x,y) = R(x,y) ∪ S(x,y).
func fixtureUCQ(t testing.TB) (*Database, *UCQ) {
	t.Helper()
	db, _ := fixtureDB(t)
	u, err := NewUCQ("U",
		MustCQ("u1", []string{"x", "y"}, NewAtom("R", V("x"), V("y"))),
		MustCQ("u2", []string{"x", "y"}, NewAtom("S", V("x"), V("y"))))
	if err != nil {
		t.Fatal(err)
	}
	return db, u
}

func mustOpen(t testing.TB, db *Database, q Query, opts ...Option) *Handle {
	t.Helper()
	h, err := Open(db, q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestOpenKindsAndCapabilities(t *testing.T) {
	db, q := fixtureDB(t)
	_, u := fixtureUCQ(t)

	cq := mustOpen(t, db, q)
	if cq.Kind() != KindCQ {
		t.Fatalf("cq kind = %s", cq.Kind())
	}
	wantCQ := []Capability{CapEnumerate, CapContains, CapInvert, CapSample, CapExplain, CapSnapshot}
	if got := cq.Capabilities(); len(got) != len(wantCQ) {
		t.Fatalf("cq capabilities = %v, want %v", got, wantCQ)
	} else {
		for i := range got {
			if got[i] != wantCQ[i] {
				t.Fatalf("cq capabilities = %v, want %v", got, wantCQ)
			}
		}
	}

	ucq := mustOpen(t, db, u)
	if ucq.Kind() != KindUCQ {
		t.Fatalf("ucq kind = %s", ucq.Kind())
	}
	if ucq.Has(CapInvert) || ucq.Has(CapUpdate) || ucq.Has(CapExplain) {
		t.Fatalf("ucq capabilities = %v: must not invert/update/explain", ucq.Capabilities())
	}
	if !ucq.Has(CapEnumerate) || !ucq.Has(CapSample) || !ucq.Has(CapContains) || !ucq.Has(CapSnapshot) {
		t.Fatalf("ucq capabilities = %v: missing enumerate/sample/contains/snapshot", ucq.Capabilities())
	}

	dq := MustCQ("dq", []string{"a", "b"}, NewAtom("R", V("a"), V("b")))
	dyn := mustOpen(t, db, dq, WithDynamic())
	if dyn.Kind() != KindDynamic {
		t.Fatalf("dynamic kind = %s", dyn.Kind())
	}
	if dyn.Has(CapEnumerate) || !dyn.Has(CapUpdate) || !dyn.Has(CapInvert) || !dyn.Has(CapSnapshot) {
		t.Fatalf("dynamic capabilities = %v", dyn.Capabilities())
	}

	// Typed accessors fail with the sentinel, never a type assertion burden
	// on the caller.
	if _, err := ucq.Inverter(); !IsUnsupported(err) {
		t.Fatalf("union Inverter err = %v, want ErrUnsupported", err)
	}
	if _, err := cq.Updater(); !IsUnsupported(err) {
		t.Fatalf("static Updater err = %v, want ErrUnsupported", err)
	}
	if _, err := dyn.Permute(rand.New(rand.NewSource(1))); !IsUnsupported(err) {
		t.Fatalf("dynamic Permute err = %v, want ErrUnsupported", err)
	}
	if _, err := dyn.Enumerate(); !IsUnsupported(err) {
		t.Fatalf("dynamic Enumerate err = %v, want ErrUnsupported", err)
	}
	if _, err := ucq.Explain(); !IsUnsupported(err) {
		t.Fatalf("union Explain err = %v, want ErrUnsupported", err)
	}
	if plan, err := cq.Explain(); err != nil || plan == "" {
		t.Fatalf("cq Explain = %q, %v", plan, err)
	}

	// Option combinations the backends cannot serve fail at Open.
	if _, err := Open(db, u, WithDynamic()); !IsUnsupported(err) {
		t.Fatalf("Open(UCQ, WithDynamic) err = %v, want ErrUnsupported", err)
	}
	if _, err := Open(db, dq, WithDynamic(), WithCanonical()); !IsUnsupported(err) {
		t.Fatalf("Open(WithDynamic, WithCanonical) err = %v, want ErrUnsupported", err)
	}
	proj := MustCQ("proj", []string{"a"}, NewAtom("R", V("a"), V("b")))
	if _, err := Open(db, proj, WithDynamic()); !errors.Is(err, ErrNotFull) {
		t.Fatalf("Open(projection, WithDynamic) err = %v, want ErrNotFull", err)
	}
}

// TestHandleCompatOldVsNew is the old-API-vs-new-API golden suite: every
// probe of the legacy constructors must be byte-identical through the
// Handle, including the iterator-native enumerations.
func TestHandleCompatOldVsNew(t *testing.T) {
	db, q := fixtureDB(t)
	_, u := fixtureUCQ(t)

	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := NewUnionAccess(db, u, true)
	if err != nil {
		t.Fatal(err)
	}

	type legacy struct {
		name  string
		count int64
		head  []string
		acc   func(j int64) (Tuple, error)
		batch func(js []int64) ([]Tuple, error)
		page  func(off, lim int64) ([]Tuple, error)
		perm  func(rng *rand.Rand) *Permutation
		h     *Handle
	}
	cases := []legacy{
		{
			name: "cq", count: ra.Count(), head: ra.Head(),
			acc:   ra.Access,
			batch: func(js []int64) ([]Tuple, error) { return ra.AccessBatch(js, 0) },
			page:  ra.Page,
			perm:  ra.Permute,
			h:     mustOpen(t, db, q),
		},
		{
			name: "ucq", count: ua.Count(), head: ua.Head(),
			acc:   ua.Access,
			batch: func(js []int64) ([]Tuple, error) { return ua.AccessBatch(js, 0) },
			page:  ua.Page,
			perm:  ua.Permute,
			h:     mustOpen(t, db, u),
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := tc.h
			if h.Count() != tc.count {
				t.Fatalf("Count = %d, want %d", h.Count(), tc.count)
			}
			if len(h.Head()) != len(tc.head) {
				t.Fatalf("Head = %v, want %v", h.Head(), tc.head)
			}
			for i := range tc.head {
				if h.Head()[i] != tc.head[i] {
					t.Fatalf("Head = %v, want %v", h.Head(), tc.head)
				}
			}

			// All() replays the legacy enumeration order exactly.
			var j int64
			for tu, err := range h.All() {
				if err != nil {
					t.Fatal(err)
				}
				want, err := tc.acc(j)
				if err != nil {
					t.Fatal(err)
				}
				if !tu.Equal(want) {
					t.Fatalf("All[%d] = %v, legacy Access = %v", j, tu, want)
				}
				j++
			}
			if j != tc.count {
				t.Fatalf("All yielded %d answers, want %d", j, tc.count)
			}

			// AccessInto matches Access through the handle.
			buf := make(Tuple, len(tc.head))
			for j := int64(0); j < tc.count; j++ {
				if err := h.AccessInto(j, buf); err != nil {
					t.Fatal(err)
				}
				want, _ := tc.acc(j)
				if !buf.Equal(want) {
					t.Fatalf("AccessInto(%d) = %v, want %v", j, buf, want)
				}
			}

			// Shuffled replays the legacy permutation draw for draw.
			old := tc.perm(rand.New(rand.NewSource(99)))
			var got []Tuple
			for tu, err := range h.Shuffled(rand.New(rand.NewSource(99))) {
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, tu)
			}
			for i := range got {
				want, ok := old.Next()
				if !ok {
					t.Fatalf("legacy permutation ended at %d, Shuffled yielded %d", i, len(got))
				}
				if !got[i].Equal(want) {
					t.Fatalf("Shuffled[%d] = %v, legacy Permutation = %v", i, got[i], want)
				}
			}
			if _, ok := old.Next(); ok {
				t.Fatal("legacy permutation outlived Shuffled")
			}

			// Batch and page agree with the legacy entry points.
			js := []int64{0, tc.count - 1, 1, 1, tc.count / 2}
			hb, err := h.AccessBatch(js)
			if err != nil {
				t.Fatal(err)
			}
			lb, err := tc.batch(js)
			if err != nil {
				t.Fatal(err)
			}
			for i := range hb {
				if !hb[i].Equal(lb[i]) {
					t.Fatalf("AccessBatch[%d] = %v, legacy %v", i, hb[i], lb[i])
				}
			}
			hp, err := h.Page(1, tc.count)
			if err != nil {
				t.Fatal(err)
			}
			lp, err := tc.page(1, tc.count)
			if err != nil {
				t.Fatal(err)
			}
			if len(hp) != len(lp) {
				t.Fatalf("Page lengths %d vs %d", len(hp), len(lp))
			}
			for i := range hp {
				if !hp[i].Equal(lp[i]) {
					t.Fatalf("Page[%d] = %v, legacy %v", i, hp[i], lp[i])
				}
			}

			// Enumerate is the thin adapter over the same order.
			e, err := h.Enumerate()
			if err != nil {
				t.Fatal(err)
			}
			for j := int64(0); ; j++ {
				tu, ok := e.Next()
				if !ok {
					if j != tc.count {
						t.Fatalf("Enumerate ended at %d, want %d", j, tc.count)
					}
					break
				}
				want, _ := tc.acc(j)
				if !tu.Equal(want) {
					t.Fatalf("Enumerate[%d] = %v, want %v", j, tu, want)
				}
			}
		})
	}
}

// TestUnionAccessParityWithCQPath: a union whose disjuncts are the same CQ
// twice is semantically that CQ, and the mc-UCQ backend must reproduce the
// CQ path byte for byte across the parity surface added to UnionAccess —
// AccessInto, Page, SampleN.
func TestUnionAccessParityWithCQPath(t *testing.T) {
	db, q := fixtureDB(t)
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	q2 := MustCQ("q2", q.Head, q.Body...)
	u, err := NewUCQ("uu", q, q2)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := NewUnionAccess(db, u, true)
	if err != nil {
		t.Fatal(err)
	}
	n := ra.Count()
	if ua.Count() != n {
		t.Fatalf("union of Q with itself counts %d, CQ counts %d", ua.Count(), n)
	}

	buf := make(Tuple, len(ra.Head()))
	for j := int64(0); j < n; j++ {
		want, err := ra.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if err := ua.AccessInto(j, buf); err != nil {
			t.Fatal(err)
		}
		if !buf.Equal(want) {
			t.Fatalf("union AccessInto(%d) = %v, CQ %v", j, buf, want)
		}
	}
	if err := ua.AccessInto(n, buf); !IsOutOfBounds(err) {
		t.Fatalf("union AccessInto(n) err = %v, want ErrOutOfBounds", err)
	}

	up, err := ua.Page(3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := ra.Page(3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != len(rp) {
		t.Fatalf("union Page %d rows, CQ %d", len(up), len(rp))
	}
	for i := range up {
		if !up[i].Equal(rp[i]) {
			t.Fatalf("union Page[%d] = %v, CQ %v", i, up[i], rp[i])
		}
	}
	if _, err := ua.Page(-1, 5); !IsOutOfBounds(err) {
		t.Fatalf("union Page(-1) err = %v", err)
	}
	if past, err := ua.Page(n+7, 5); err != nil || len(past) != 0 {
		t.Fatalf("union Page(past end) = %d rows, err %v", len(past), err)
	}

	// SampleN: distinct, complete at k ≥ n, ErrOutOfBounds on k < 0 —
	// identical contract to the CQ sampler.
	if _, err := ua.SampleN(-1, rand.New(rand.NewSource(1))); !IsOutOfBounds(err) {
		t.Fatalf("union SampleN(-1) err = %v", err)
	}
	got, err := ua.SampleN(n+100, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != n {
		t.Fatalf("union SampleN clamped to %d, want %d", len(got), n)
	}
	seen := make(map[string]bool, n)
	for _, tu := range got {
		seen[fmt.Sprint(tu)] = true
	}
	if int64(len(seen)) != n {
		t.Fatalf("union SampleN repeated answers: %d distinct of %d", len(seen), n)
	}
}

// TestSamplerCapabilityUnified: every backend reaches sampling through the
// one Sampler signature, with the same error shape — k < 0 is
// ErrOutOfBounds, an empty answer set is an empty sample with a nil error —
// and honestly reports replacement semantics.
func TestSamplerCapabilityUnified(t *testing.T) {
	db, q := fixtureDB(t)
	_, u := fixtureUCQ(t)
	dq := MustCQ("dq", []string{"a", "b"}, NewAtom("R", V("a"), V("b")))

	for _, tc := range []struct {
		name     string
		h        *Handle
		distinct bool
	}{
		{"cq", mustOpen(t, db, q), true},
		{"ucq", mustOpen(t, db, u), true},
		{"dynamic", mustOpen(t, db, dq, WithDynamic()), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			smp, err := tc.h.Sampler()
			if err != nil {
				t.Fatal(err)
			}
			if smp.Distinct() != tc.distinct {
				t.Fatalf("Distinct = %v, want %v", smp.Distinct(), tc.distinct)
			}
			if _, err := smp.SampleN(-1, rand.New(rand.NewSource(1))); !IsOutOfBounds(err) {
				t.Fatalf("SampleN(-1) err = %v, want ErrOutOfBounds", err)
			}
			ts, err := smp.SampleN(5, rand.New(rand.NewSource(2)))
			if err != nil {
				t.Fatal(err)
			}
			if len(ts) != 5 {
				t.Fatalf("SampleN(5) = %d answers", len(ts))
			}
			cont, err := tc.h.Container()
			if err != nil {
				t.Fatal(err)
			}
			for _, tu := range ts {
				if !cont.Contains(tu) {
					t.Fatalf("sampled non-answer %v", tu)
				}
			}
		})
	}

	// The CQ sampler replays the legacy SampleK draws for the same rng.
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	smp, _ := mustOpen(t, db, q).Sampler()
	got, err := smp.SampleN(7, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ra.SampleK(7, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("Sampler[%d] = %v, legacy SampleK %v", i, got[i], want[i])
		}
	}

	// Empty answer set: empty sample, nil error — on every backend.
	empty := NewDatabase()
	empty.MustCreate("R", "a", "b")
	empty.MustCreate("S", "b", "c")
	eq := MustCQ("eq", []string{"a", "b"}, NewAtom("R", V("a"), V("b")))
	for _, h := range []*Handle{
		mustOpen(t, empty, eq),
		mustOpen(t, empty, eq, WithDynamic()),
	} {
		smp, err := h.Sampler()
		if err != nil {
			t.Fatal(err)
		}
		ts, err := smp.SampleN(4, rand.New(rand.NewSource(3)))
		if err != nil || len(ts) != 0 {
			t.Fatalf("%s empty SampleN = %d answers, err %v", h.Kind(), len(ts), err)
		}
	}
}

// TestDynamicHandleSurface: the dynamic backend serves the shared surface
// (including batches and pages, probed under its read lock) while the
// stable-order iterators refuse with ErrUnsupported.
func TestDynamicHandleSurface(t *testing.T) {
	db, _ := fixtureDB(t)
	dq := MustCQ("dq", []string{"a", "b"}, NewAtom("R", V("a"), V("b")))
	h := mustOpen(t, db, dq, WithDynamic())
	n := h.Count()
	if n == 0 {
		t.Fatal("empty fixture")
	}

	js := []int64{0, n - 1, 0}
	ts, err := h.AccessBatch(js)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range js {
		want, err := h.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if !ts[i].Equal(want) {
			t.Fatalf("dynamic AccessBatch[%d] = %v, want %v", i, ts[i], want)
		}
	}
	if _, err := h.AccessBatch([]int64{n}); !IsOutOfBounds(err) {
		t.Fatalf("dynamic AccessBatch out of range err = %v", err)
	}
	page, err := h.Page(1, n)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(page)) != n-1 {
		t.Fatalf("dynamic Page = %d rows, want %d", len(page), n-1)
	}

	for _, err := range h.All() {
		if !IsUnsupported(err) {
			t.Fatalf("dynamic All yielded err = %v, want ErrUnsupported", err)
		}
	}
	for _, err := range h.Shuffled(rand.New(rand.NewSource(1))) {
		if !IsUnsupported(err) {
			t.Fatalf("dynamic Shuffled yielded err = %v, want ErrUnsupported", err)
		}
	}

	// The buffer-arity contract is uniform across backends: a mismatched
	// AccessInto buffer is a descriptive error, never a panic and never
	// ErrOutOfBounds (which means a bad position).
	for _, hh := range []*Handle{h, mustOpen(t, db, MustCQ("q", []string{"a", "b"}, NewAtom("R", V("a"), V("b"))))} {
		err := hh.AccessInto(0, make(Tuple, 5))
		if err == nil || IsOutOfBounds(err) {
			t.Fatalf("%s AccessInto with wrong buffer: err = %v, want a distinct arity error", hh.Kind(), err)
		}
	}

	// A cancelled context stops a dynamic batch too (serial probe loop).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.AccessBatchContext(ctx, js); !errors.Is(err, context.Canceled) {
		t.Fatalf("dynamic cancelled batch err = %v", err)
	}
}

// bigHandle builds a star-join handle large enough (≈493k answers) that a
// multi-hundred-thousand-probe batch cannot finish before a cancellation a
// few milliseconds in.
func bigHandle(t testing.TB) (*Database, *Handle) {
	t.Helper()
	db, q, err := synth.Star(synth.Config{Relations: 3, TuplesPerRelation: 200, KeyDomain: 30, SkewS: 1.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return db, mustOpen(t, db, q)
}

// TestAccessBatchContextCancellation is the cancellation acceptance test: a
// cancelled context stops a large AccessBatch early, the call reports
// ctx.Err(), and nothing is corrupted — the same positions probed again
// (concurrently and after the fact) give exactly the per-position Access
// answers.
func TestAccessBatchContextCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("large cancellation fixture skipped in -short mode")
	}
	_, h := bigHandle(t)
	n := h.Count()

	// A batch of 2M probes takes hundreds of milliseconds at ~300ns/probe;
	// cancelling after 2ms must abort it long before completion.
	js := make([]int64, 1<<21)
	rng := rand.New(rand.NewSource(5))
	for i := range js {
		js[i] = rng.Int63n(n)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var concurrent []Tuple
	var concurrentErr error
	go func() {
		// An innocent bystander on the same index and positions must be
		// unaffected by its neighbor's cancellation.
		defer wg.Done()
		concurrent, concurrentErr = h.AccessBatch(js[:4096])
	}()
	time.AfterFunc(2*time.Millisecond, cancel)
	start := time.Now()
	out, err := h.AccessBatchContext(ctx, js)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch err = %v (out len %d, took %v), want context.Canceled", err, len(out), elapsed)
	}
	if out != nil {
		t.Fatalf("cancelled batch leaked %d answers", len(out))
	}
	wg.Wait()
	if concurrentErr != nil {
		t.Fatal(concurrentErr)
	}
	for i, tu := range concurrent {
		want, err := h.Access(js[i])
		if err != nil {
			t.Fatal(err)
		}
		if !tu.Equal(want) {
			t.Fatalf("concurrent batch corrupted at %d: %v, want %v", i, tu, want)
		}
	}

	// The index still answers the very same batch correctly afterwards.
	redo, err := h.AccessBatchContext(context.Background(), js[:8192])
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range redo {
		want, _ := h.Access(js[i])
		if !tu.Equal(want) {
			t.Fatalf("post-cancel batch wrong at %d: %v, want %v", i, tu, want)
		}
	}

	// Pre-cancelled contexts never probe at all.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := h.AccessBatchContext(pre, js[:2]); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled batch err = %v", err)
	}
	if _, err := h.PageContext(pre, 0, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled page err = %v", err)
	}
}

// TestIteratorContextCancellation: AllContext and ShuffledContext observe
// cancellation between yields, surfacing ctx.Err() as the final pair; a
// permutation's NextNContext does the same between chunks.
func TestIteratorContextCancellation(t *testing.T) {
	db, q := fixtureDB(t)
	h := mustOpen(t, db, q)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var yielded int
	var last error
	for tu, err := range h.AllContext(ctx) {
		if err != nil {
			last = err
			break
		}
		_ = tu
		if yielded++; yielded == 3 {
			cancel()
		}
	}
	if !errors.Is(last, context.Canceled) {
		t.Fatalf("AllContext final err = %v, want context.Canceled", last)
	}
	if yielded != 3 {
		t.Fatalf("AllContext yielded %d answers after cancel-at-3", yielded)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	yielded, last = 0, nil
	for tu, err := range h.ShuffledContext(ctx2, rand.New(rand.NewSource(8))) {
		if err != nil {
			last = err
			break
		}
		_ = tu
		if yielded++; yielded == 2 {
			cancel2()
		}
	}
	if !errors.Is(last, context.Canceled) {
		t.Fatalf("ShuffledContext final err = %v, want context.Canceled", last)
	}

	p, err := h.Permute(rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := p.NextNContext(pre, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("NextNContext pre-cancelled err = %v", err)
	}
	// The cursor survives a cancelled draw: a live context keeps draining.
	ts, err := p.NextNContext(context.Background(), h.Count())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) == 0 {
		t.Fatal("permutation dead after a cancelled NextNContext")
	}
}

// TestHandleUpdaterRoundTrip: updates through the capability are the
// legacy DynamicAccess semantics (change reporting, count maintenance).
func TestHandleUpdaterRoundTrip(t *testing.T) {
	db, _ := fixtureDB(t)
	dq := MustCQ("dq", []string{"a", "b"}, NewAtom("R", V("a"), V("b")))
	h := mustOpen(t, db, dq, WithDynamic())
	upd, err := h.Updater()
	if err != nil {
		t.Fatal(err)
	}
	n := h.Count()
	tu := Tuple{Value(9001), Value(9002)}
	if changed, err := upd.Insert("R", tu); err != nil || !changed {
		t.Fatalf("Insert = %v, %v", changed, err)
	}
	if h.Count() != n+1 {
		t.Fatalf("count after insert = %d, want %d", h.Count(), n+1)
	}
	if changed, err := upd.Insert("R", tu); err != nil || changed {
		t.Fatalf("duplicate Insert = %v, %v", changed, err)
	}
	cont, _ := h.Container()
	if !cont.Contains(tu) {
		t.Fatal("inserted tuple not contained")
	}
	if changed, err := upd.Delete("R", tu); err != nil || !changed {
		t.Fatalf("Delete = %v, %v", changed, err)
	}
	if h.Count() != n {
		t.Fatalf("count after delete = %d, want %d", h.Count(), n)
	}
}
