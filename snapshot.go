package renum

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/access"
	"repro/internal/cqenum"
	"repro/internal/dynaccess"
	"repro/internal/mcucq"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/snapshot"
)

// ErrSnapshotInvalid is the typed-error family of snapshot decoding: every
// failure OpenSnapshot can report about the file's content — bad magic,
// unsupported format version, foreign byte order, truncation, checksum
// mismatch, structural corruption — wraps it. Test with errors.Is; the
// decoder never panics on hostile input (pinned by FuzzOpenSnapshot).
var ErrSnapshotInvalid = snapshot.ErrInvalid

// SnapshotVersion is the on-disk format version this build writes and the
// only one it reads. See the README's versioning policy: the format changes
// by bumping this number, never by silently reinterpreting old files.
const SnapshotVersion = snapshot.Version

// Catalog section tags.
const (
	secMeta     = 1
	secDict     = 2
	secRelation = 3
	secEntry    = 4
)

// Backend kinds inside an entry section.
const (
	entryKindCQ      = 1
	entryKindUCQ     = 2
	entryKindDynamic = 3
)

// CatalogEntry pairs one served query with its prepared handle: the unit a
// snapshot stores. Q is the query the handle was compiled from (used to
// recompile after data reloads and for metadata); H serves the probes.
type CatalogEntry struct {
	Name string
	Q    Query
	H    *Handle
}

// queryCarrier exposes the query a backend was actually compiled from —
// after cost-based planning, possibly a body- or disjunct-reordering of the
// caller's query. WriteSnapshot prefers it over the caller-supplied Q, so a
// snapshot records the *chosen* tree and a restored generation probes (and,
// after a data reload, recompiles) on exactly that tree. This matters most
// for unions: the saved indexes are in compiled-disjunct order, and restore
// must pair them with the same order.
type queryCarrier interface {
	compiledQuery() Query
}

func (b raBackend) compiledQuery() Query     { return b.c.Query }
func (b cqSnapBackend) compiledQuery() Query { return b.ra.c.Query }
func (b uaBackend) compiledQuery() Query     { return b.u }

// snapshotter is the save capability of a Handle backend: static CQ and
// UCQ backends persist their compiled indexes; the dynamic backend
// persists its *base contents* (arrival-ordered tuples plus tombstones)
// and is rebuilt from them on restore — cheaper than serializing Fenwick
// trees and bucket caches, and exactly reproduces the live enumeration
// order. Restored backends implement it too, so a booted-from-snapshot
// server can save again. CapSnapshot reports this interface.
type snapshotter interface {
	marshalSnapshotEntry(s *snapshot.SectionWriter)
}

// WriteSnapshot writes a complete catalog — dictionary, base relations, and
// every entry's persistable form (compiled index for static entries, base
// contents for dynamic ones) — to w in the versioned binary snapshot
// format. Every entry's handle must have CapSnapshot and a non-nil Q.
//
// The writer must not race with mutations of db (admin writes); callers
// serialize saves the same way they serialize loads.
func WriteSnapshot(w io.Writer, db *Database, gen uint64, entries []CatalogEntry) error {
	for _, e := range entries {
		if e.H == nil || e.Q == nil {
			return fmt.Errorf("renum: snapshot entry %q: missing handle or query", e.Name)
		}
		if _, ok := e.H.b.(snapshotter); !ok {
			return fmt.Errorf("renum: snapshot entry %q: %w (kind %s)", e.Name, ErrUnsupported, e.H.Kind())
		}
	}
	enc := snapshot.NewWriter(w)

	names := db.Names()
	s := enc.Section(secMeta)
	s.U64(gen)
	s.U64(uint64(len(names)))
	s.U64(uint64(len(entries)))
	s.Close()

	s = enc.Section(secDict)
	relation.MarshalDict(s, db.Dict())
	s.Close()

	for _, name := range names {
		rel, err := db.Relation(name)
		if err != nil {
			return err
		}
		s = enc.Section(secRelation)
		relation.MarshalRelation(s, rel)
		s.Close()
	}

	for _, e := range entries {
		s = enc.Section(secEntry)
		s.Str(e.Name)
		q := e.Q
		if qc, ok := e.H.b.(queryCarrier); ok {
			if cq := qc.compiledQuery(); cq != nil {
				q = cq
			}
		}
		query.MarshalQuery(s, q)
		e.H.b.(snapshotter).marshalSnapshotEntry(s)
		s.Close()
	}
	return enc.Finish()
}

// SaveSnapshot writes the catalog to path atomically (temp file + rename in
// the same directory), so an interrupted save never leaves a torn file where
// a boot scan would pick it up.
func SaveSnapshot(path string, db *Database, gen uint64, entries []CatalogEntry) error {
	return snapshot.WriteFileAtomic(path, func(w io.Writer) error {
		return WriteSnapshot(w, db, gen, entries)
	})
}

// Catalog is an open snapshot: the restored database (dictionary +
// relations) and one ready handle per saved entry, all backed by the mapped
// file. Close releases the mapping and invalidates every restored handle
// and relation — a Catalog must outlive all use of its entries, so
// long-lived consumers (the daemon) hold it for the process lifetime.
type Catalog struct {
	db      *Database
	gen     uint64
	entries []CatalogEntry
	f       *snapshot.File
}

// DB returns the restored database. Its relations are immutable
// (snapshot-backed); loading new tables registers fresh heap relations
// alongside them.
func (c *Catalog) DB() *Database { return c.db }

// Generation returns the registry generation recorded at save time.
// Daemons booting from the catalog continue numbering from it, so
// generations are monotonic across restarts.
func (c *Catalog) Generation() uint64 { return c.gen }

// Entries returns the restored entries in saved order.
func (c *Catalog) Entries() []CatalogEntry {
	return append([]CatalogEntry(nil), c.entries...)
}

// Close unmaps the snapshot. Every handle, relation and dictionary restored
// from this catalog becomes invalid. Idempotent.
func (c *Catalog) Close() error {
	if c.f == nil {
		return nil
	}
	f := c.f
	c.f = nil
	return f.Close()
}

// OpenSnapshot maps the snapshot at path, validates it (framing, version,
// per-section checksums, structural invariants) and restores the catalog:
// cold start is O(open + validate) instead of O(preprocess) — numeric
// sections (columns, bucket tables, weights, child-ID arrays) are zero-copy
// views of the mapping, string regions are validated and copied, and hash
// indexes (tuple membership, dictionary reverse lookup) hydrate lazily on
// first use.
//
// Options apply to the restored handles; WithWorkers sets their batched
// probe fan-out. Restored handles report their capabilities: a CQ entry
// serves everything but Explain (the compiled plan is not persisted), a UCQ
// entry matches its built form, and both keep CapSnapshot, so a restored
// catalog can be saved again.
func OpenSnapshot(path string, opts ...Option) (*Catalog, error) {
	f, err := snapshot.OpenFile(path)
	if err != nil {
		return nil, err
	}
	cat, err := restoreCatalog(f, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return cat, nil
}

// OpenSnapshotBytes is OpenSnapshot over an in-memory image (copied to an
// aligned buffer). It backs tests and the fuzz target; production boots use
// OpenSnapshot's file mapping.
func OpenSnapshotBytes(b []byte, opts ...Option) (*Catalog, error) {
	f, err := snapshot.OpenBytes(b)
	if err != nil {
		return nil, err
	}
	cat, err := restoreCatalog(f, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return cat, nil
}

func restoreCatalog(f *snapshot.File, opts []Option) (*Catalog, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	secs := f.Sections()
	if len(secs) < 2 || secs[0].Tag != secMeta || secs[1].Tag != secDict {
		return nil, snapshot.Corruptf("catalog: missing meta/dict sections")
	}
	mr := secs[0].Reader()
	gen := mr.U64()
	numRels := mr.U64()
	numEntries := mr.U64()
	if err := mr.Err(); err != nil {
		return nil, err
	}
	// Check each count individually before summing: crafted counts near
	// 2^64 would otherwise wrap the sum to len(secs) and index past the
	// section table.
	rest := uint64(len(secs) - 2)
	if numRels > rest || numEntries > rest || numRels+numEntries != rest {
		return nil, snapshot.Corruptf("catalog: meta records %d relations + %d entries, file holds %d sections", numRels, numEntries, rest)
	}

	dict, err := relation.UnmarshalDict(secs[1].Reader())
	if err != nil {
		return nil, err
	}
	db := relation.NewDatabaseWithDict(dict)
	cat := &Catalog{db: db, gen: gen, f: f}

	for i := uint64(0); i < numRels; i++ {
		sec := secs[2+i]
		if sec.Tag != secRelation {
			return nil, snapshot.Corruptf("catalog: section %d has tag %d, want relation", 2+i, sec.Tag)
		}
		rel, err := relation.UnmarshalRelation(sec.Reader())
		if err != nil {
			return nil, err
		}
		if db.Has(rel.Name()) {
			return nil, snapshot.Corruptf("catalog: duplicate relation %q", rel.Name())
		}
		db.Add(rel)
	}

	for i := uint64(0); i < numEntries; i++ {
		sec := secs[2+numRels+i]
		if sec.Tag != secEntry {
			return nil, snapshot.Corruptf("catalog: section %d has tag %d, want entry", 2+numRels+i, sec.Tag)
		}
		e, err := restoreEntry(sec.Reader(), cfg)
		if err != nil {
			return nil, err
		}
		cat.entries = append(cat.entries, e)
	}
	return cat, nil
}

func restoreEntry(r *snapshot.Reader, cfg config) (CatalogEntry, error) {
	name := r.Str()
	q, err := query.UnmarshalQuery(r)
	if err != nil {
		return CatalogEntry{}, err
	}
	kind := r.U64()
	if err := r.Err(); err != nil {
		return CatalogEntry{}, err
	}
	var h *Handle
	switch kind {
	case entryKindCQ:
		cq, ok := q.(*query.CQ)
		if !ok {
			return CatalogEntry{}, snapshot.Corruptf("entry %s: cq payload with a union query", name)
		}
		idx, err := access.UnmarshalIndex(r)
		if err != nil {
			return CatalogEntry{}, err
		}
		ra := &RandomAccess{c: cqenum.Restore(cq, idx)}
		h = &Handle{b: cqSnapBackend{ra}, workers: cfg.workers}
	case entryKindUCQ:
		u, ok := q.(*query.UCQ)
		if !ok {
			return CatalogEntry{}, snapshot.Corruptf("entry %s: ucq payload with a non-union query", name)
		}
		n := r.U64()
		// Bound both counts against the payload before trusting them: an
		// index blob costs far more than 8 bytes, and RestoredIndexCount is
		// exponential in m (it would overflow past m≈62 and could not fit a
		// real file long before that).
		if len(u.Disjuncts) > 32 {
			return CatalogEntry{}, snapshot.Corruptf("entry %s: implausible %d-disjunct union", name, len(u.Disjuncts))
		}
		if n > uint64(r.Remaining()/8) {
			return CatalogEntry{}, snapshot.Corruptf("entry %s: index count %d exceeds payload", name, n)
		}
		if want := mcucq.RestoredIndexCount(len(u.Disjuncts)); n != uint64(want) {
			return CatalogEntry{}, snapshot.Corruptf("entry %s: %d indexes for a %d-disjunct union, want %d", name, n, len(u.Disjuncts), want)
		}
		indexes := make([]*access.Index, n)
		for i := range indexes {
			idx, err := access.UnmarshalIndex(r)
			if err != nil {
				return CatalogEntry{}, err
			}
			indexes[i] = idx
		}
		m, err := mcucq.Restore(u, indexes)
		if err != nil {
			return CatalogEntry{}, snapshot.Corruptf("entry %s: %v", name, err)
		}
		ua := &UnionAccess{m: m, head: append([]string(nil), u.Disjuncts[0].Head...), u: u}
		h = &Handle{b: uaBackend{ua}, workers: cfg.workers}
	case entryKindDynamic:
		cq, ok := q.(*query.CQ)
		if !ok {
			return CatalogEntry{}, snapshot.Corruptf("entry %s: dynamic payload with a union query", name)
		}
		tables, err := dynaccess.UnmarshalBase(r)
		if err != nil {
			return CatalogEntry{}, err
		}
		idx, err := dynaccess.NewFromTables(cq, tables)
		if err != nil {
			return CatalogEntry{}, snapshot.Corruptf("entry %s: %v", name, err)
		}
		h = &Handle{b: daBackend{&DynamicAccess{idx: idx}}, workers: cfg.workers}
	default:
		return CatalogEntry{}, snapshot.Corruptf("entry %s: unknown backend kind %d", name, kind)
	}
	if !r.AtEnd() {
		if err := r.Err(); err != nil {
			return CatalogEntry{}, err
		}
		return CatalogEntry{}, snapshot.Corruptf("entry %s: %d trailing bytes", name, r.Remaining())
	}
	return CatalogEntry{Name: name, Q: q, H: h}, nil
}

// ------------------------------------------------- backend save hooks

// marshalSnapshotEntry writes the CQ backend: kind tag + one index.
func (b raBackend) marshalSnapshotEntry(s *snapshot.SectionWriter) {
	s.U64(entryKindCQ)
	b.c.Index.Marshal(s)
}

// marshalSnapshotEntry writes the dynamic backend: kind tag + the base
// tables (arrival order plus tombstones). The index structure itself is
// not serialized — NewFromTables reproduces it exactly on restore, and the
// tombstones guarantee even future revive positions match the live index.
func (b daBackend) marshalSnapshotEntry(s *snapshot.SectionWriter) {
	s.U64(entryKindDynamic)
	dynaccess.MarshalBase(s, b.DynamicAccess.idx)
}

// marshalSnapshotEntry writes the UCQ backend: kind tag + every disjunct and
// intersection index in the deterministic job order mcucq.Restore consumes.
func (b uaBackend) marshalSnapshotEntry(s *snapshot.SectionWriter) {
	s.U64(entryKindUCQ)
	indexes := b.m.Indexes()
	s.U64(uint64(len(indexes)))
	for _, idx := range indexes {
		idx.Marshal(s)
	}
}

// cqSnapBackend serves a Handle from a snapshot-restored RandomAccess. It
// is raBackend minus the explainer: the compiled plan (FullJoin) is not
// persisted, so Explain honestly reports ErrUnsupported via the capability
// surface instead of rendering from a nil plan. Everything else — probes,
// inversion, membership, sampling, enumeration, re-saving — delegates to
// the same machinery as the built form.
type cqSnapBackend struct {
	ra *RandomAccess
}

func (cqSnapBackend) kind() Kind { return KindCQ }

func (b cqSnapBackend) Count() int64                        { return b.ra.Count() }
func (b cqSnapBackend) Head() []string                      { return b.ra.Head() }
func (b cqSnapBackend) Access(j int64) (Tuple, error)       { return b.ra.Access(j) }
func (b cqSnapBackend) AccessInto(j int64, buf Tuple) error { return b.ra.AccessInto(j, buf) }

func (b cqSnapBackend) accessBatchContext(ctx context.Context, js []int64, workers int) ([]Tuple, error) {
	return b.ra.c.Index.AccessBatchContext(ctx, js, workers)
}

func (b cqSnapBackend) InvertedAccess(t Tuple) (int64, bool) { return b.ra.InvertedAccess(t) }
func (b cqSnapBackend) Contains(t Tuple) bool                { return b.ra.Contains(t) }
func (b cqSnapBackend) Permute(rng *rand.Rand) *Permutation  { return b.ra.Permute(rng) }

func (cqSnapBackend) Distinct() bool { return true }

func (b cqSnapBackend) sampleN(k int64, rng *rand.Rand, workers int) ([]Tuple, error) {
	return raBackend{b.ra}.sampleN(k, rng, workers)
}

func (b cqSnapBackend) marshalSnapshotEntry(s *snapshot.SectionWriter) {
	raBackend{b.ra}.marshalSnapshotEntry(s)
}

// IsSnapshotInvalid reports whether err belongs to the snapshot decode
// error family (errors.Is against ErrSnapshotInvalid).
func IsSnapshotInvalid(err error) bool { return errors.Is(err, ErrSnapshotInvalid) }
